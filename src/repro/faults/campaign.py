"""Execute fault plans and fan campaigns of them across processes.

:func:`run_plan` is the single-scenario engine: materialize the plan's
frozen membership, bootstrap the live cluster, replay the fault
schedule on the simulated clock, quiesce (heal every partition, zero
every loss rate), wait for the maintenance protocol to repair the
ring, then multicast under the tracer and evaluate every oracle
against the causal reconstruction.  The quiesce-then-check structure
is what makes the oracles *sound*: transient churn may legitimately
lose messages, but a repaired ring must deliver perfectly — so any
violation is a protocol bug the shrinker can minimize.

:func:`run_campaign` fans hundreds of generated plans over worker
processes.  Plans are self-describing values and outcomes are plain
data, so the pool is a straight ordered map — `--jobs N` output is
byte-identical to serial, same as the parallel experiment engine
(:mod:`repro.experiments.parallel`) whose worker-initializer pattern
this follows.

``mode="failover"`` is the proactive alternative to quiesce-then-
repair: the cluster is quiesced *right after the last fault event*,
while the ring is still maximally broken, and the multicast goes out
immediately.  Orphaned members are switched onto the precomputed
backup subtrees of :mod:`repro.multicast.backup` and judged by the
delivery-gap oracle; :func:`compare_plan` runs both paths under the
same seed (and the same early quiesce point) so their per-member gap
distributions are directly comparable.
"""

from __future__ import annotations

import importlib
import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.churn.resilience import ResilienceReport, percentile
from repro.faults.oracles import (
    Violation,
    check_failover_multicast,
    check_flood_accounting,
    check_multicast,
    check_ring,
)
from repro.faults.plan import MIN_LIVE_MEMBERS, FaultPlan, generate_plan
from repro.multicast.backup import (
    FailoverTiming,
    apply_failover,
    backup_plan_for_record,
    delivery_gaps,
    sorted_gap_items,
)
from repro.systems import MemberSpec, get_system
from repro.trace.causal import MulticastRecord, reconstruct
from repro.trace.tracer import TRACER

if TYPE_CHECKING:
    from repro.protocol.base_peer import BasePeer
    from repro.protocol.cluster import Cluster
    from repro.sim.latency import LatencyModel

#: Stabilization rounds granted for post-fault ring repair before the
#: convergence oracle gives up.  Generous on purpose: convergence
#: failures should mean "repair is broken", not "repair is slow".
MAX_REPAIR_ROUNDS = 400

#: Seconds after the last scheduled fault event at which failover mode
#: quiesces the network and multicasts.  Long enough for the final
#: event to apply and its datagrams to settle, far shorter than a
#: stabilization interval — the ring is still broken at send time,
#: which is the scenario backup trees exist for.
FAILOVER_SETTLE = 0.25

#: Execution modes of :func:`run_plan`.
MODES = ("repair", "failover")


@dataclass(frozen=True)
class PlanOutcome:
    """Everything one plan execution produced, as plain data.

    Violations are ordered by evaluation (multicast ordinal, then
    oracle); two executions of the same plan produce identical
    outcomes — the determinism contract ``tests/conftest.py`` enforces.
    """

    plan: FaultPlan
    violations: tuple[Violation, ...] = ()
    delivery_ratios: tuple[float, ...] = ()
    duplicates_per_message: tuple[int, ...] = ()
    final_membership: int = 0
    #: Which path produced the outcome ("repair" or "failover").
    mode: str = "repair"
    #: Per multicast, sorted ``(member, gap)`` pairs: seconds from
    #: ``mc.origin`` to eventual delivery.  Repair-mode gaps are charged
    #: the stabilization wait (:attr:`repair_wait`) the message spent
    #: queued before the ring was trusted again; failover-mode gaps are
    #: primary delivery times plus the structural backup recovery times.
    member_gaps: tuple[tuple[tuple[int, float], ...], ...] = ()
    #: Per multicast, the members the installed backup re-fed (empty in
    #: repair mode) — the "affected set" gap comparisons pair on.
    recovered: tuple[tuple[int, ...], ...] = ()
    #: Seconds the repair path waited in the post-quiesce convergence
    #: loop before its first multicast (0.0 in failover mode).
    repair_wait: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def measured(self) -> bool:
        """True when the multicast phase ran (bootstrap + repair ok)."""
        return bool(self.delivery_ratios)

    def gap_values(self) -> list[float]:
        """Every recorded per-member gap duration, across multicasts."""
        return [gap for pairs in self.member_gaps for _ident, gap in pairs]

    def report(self) -> ResilienceReport:
        """The outcome as the churn layer's standard report shape."""
        return ResilienceReport(
            system=self.plan.system,
            churn_rate=0.0,
            delivery_ratios=list(self.delivery_ratios),
            duplicates_per_message=list(self.duplicates_per_message),
            final_membership=self.final_membership,
            delivery_gaps=self.gap_values(),
        )

    def summary(self) -> str:
        verdict = "ok" if self.passed else f"{len(self.violations)} violation(s)"
        return f"{self.plan.describe()}: {verdict}"


def _resolve_peer_class(ref: str) -> type["BasePeer"]:
    """Import ``module:Class`` — the replay CLI's mutant hook."""
    module_name, _, class_name = ref.partition(":")
    if not class_name:
        raise ValueError(f"peer class ref must be 'module:Class', got {ref!r}")
    module = importlib.import_module(module_name)
    return getattr(module, class_name)


def _apply_event(cluster: "Cluster", event) -> None:
    """Apply one fault primitive to the live cluster, rank-resolved."""
    if event.action in ("crash", "leave"):
        live = cluster.live_peers()
        if len(live) <= MIN_LIVE_MEMBERS:
            return  # never grind the ring below the floor
        victim = live[event.a % len(live)]
        cluster.remove_peer(victim.ident, crash=(event.action == "crash"))
    elif event.action == "join":
        try:
            cluster.add_peer(max(event.capacity, 1))
        except RuntimeError:
            pass  # no live bootstrap peer left; the ring oracle will say so
    elif event.action == "partition":
        live = cluster.live_peers()
        if len(live) < 2:
            return
        first = live[event.a % len(live)]
        second = live[event.b % len(live)]
        if first.ident != second.ident:
            cluster.partition(first.ident, second.ident)
    elif event.action == "heal":
        cluster.heal_all_partitions()
    elif event.action == "loss":
        cluster.set_loss_rate(event.rate)
    elif event.action == "kind_loss":
        cluster.set_kind_loss(event.kind, event.rate)


def run_plan(
    plan: FaultPlan,
    peer_class: "type[BasePeer] | None" = None,
    member_spec: "MemberSpec | None" = None,
    latency: "LatencyModel | None" = None,
    mode: str = "repair",
    settle: float | None = None,
    stale_backup: bool = False,
) -> PlanOutcome:
    """Execute one fault plan end to end and judge it with the oracles.

    ``peer_class`` substitutes the live peer implementation while the
    plan's system descriptor still defines the invariants to hold it to
    — that is how the mutation tests prove the oracles have teeth.

    ``member_spec`` overrides the plan-seed-generated membership with an
    explicitly materialized one (the scenario compiler's topology axis:
    non-uniform capacity laws, Hilbert-geographic identifier placement);
    it must describe exactly ``plan.size`` members.  ``latency``
    likewise overrides the cluster's default constant-latency network.
    Both hooks leave the plan itself untouched, so determinism still
    derives from frozen values only.

    ``mode`` picks the resilience path.  ``"repair"`` (the default) is
    the quiesce-then-check flow documented above, unchanged.
    ``"failover"`` quiesces ``settle`` seconds after the *last* fault
    event and multicasts straight into the still-broken ring; orphaned
    members are re-fed over precomputed backup subtrees
    (:mod:`repro.multicast.backup`) and judged by the delivery-gap
    oracle, with exactly-once relaxed (see
    :func:`~repro.faults.oracles.check_failover_multicast`) and the
    convergence/ring oracles evaluated *after* the measurement so ring
    hygiene is still asserted.  ``settle`` also applies to repair mode
    (``None`` keeps the legacy full fault window): :func:`compare_plan`
    quiesces both paths at the same instant, so the repair path's gap
    honestly includes the stabilization wait the failover path skips.
    ``stale_backup`` builds the backup from the *pre-fault* membership
    epoch — the deliberately wrong plan the mutation tests prove the
    delivery-gap oracle catches.
    """
    from repro.protocol.cluster import Cluster

    if mode not in MODES:
        raise ValueError(f"unknown run mode {mode!r}; choose from {MODES}")
    descriptor = get_system(plan.system)
    if mode == "failover" and not descriptor.backup_capable:
        raise ValueError(
            f"system {plan.system!r} is not backup-capable; "
            f"failover mode needs a structural tree builder"
        )
    if member_spec is not None:
        if len(member_spec) != plan.size:
            raise ValueError(
                f"member spec has {len(member_spec)} members but the plan "
                f"needs {plan.size}"
            )
        spec = member_spec
    else:
        spec = MemberSpec.generate(
            plan.size,
            space_bits=plan.space_bits,
            capacity_range=plan.capacity_range,
            seed=plan.seed,
        )
    cluster = Cluster(
        peer_class if peer_class is not None else descriptor,
        spec,
        latency=latency,
        seed=plan.seed,
        uniform_fanout=plan.uniform_fanout,
    )

    try:
        cluster.bootstrap()
    except RuntimeError as exc:
        return PlanOutcome(
            plan=plan,
            violations=(Violation(oracle="bootstrap", detail=str(exc)),),
        )

    # -- fault window -----------------------------------------------------
    origin = cluster.simulator.now
    epoch_members: "list[tuple[int, int]] | None" = None
    if mode == "failover" and stale_backup:
        # The deliberately stale epoch: membership as bootstrapped,
        # before any fault event applied — a backup built here does not
        # know mid-window joiners and still trusts doomed parents.
        epoch_members = [
            (peer.ident, peer.capacity) for peer in cluster.live_peers()
        ]
    for event in sorted(plan.events, key=lambda e: (e.time, e.action)):
        cluster.simulator.call_at(
            origin + event.time, lambda e=event: _apply_event(cluster, e)
        )
    if mode == "failover" or settle is not None:
        last_event = max((event.time for event in plan.events), default=0.0)
        pause = settle if settle is not None else FAILOVER_SETTLE
        cluster.run(last_event + pause)
    else:
        cluster.run(plan.fault_window + 2.0)

    # -- quiesce (and, on the repair path, wait for convergence) ----------
    cluster.clear_fault_injection()
    repair_wait = 0.0
    if mode == "repair":
        quiesce_time = cluster.simulator.now
        converged = False
        for _ in range(MAX_REPAIR_ROUNDS):
            if cluster.ring_consistent() and cluster.neighbor_table_accuracy() == 1.0:
                converged = True
                break
            cluster.run(cluster.config.stabilize_interval)
        if not converged:
            return PlanOutcome(
                plan=plan,
                violations=(
                    Violation(
                        oracle="convergence",
                        detail=(
                            f"ring failed to repair within {MAX_REPAIR_ROUNDS} "
                            f"stabilization rounds after quiesce "
                            f"({len(cluster.live_peers())} live peers, "
                            f"ring_consistent={cluster.ring_consistent()}, "
                            f"table_accuracy="
                            f"{cluster.neighbor_table_accuracy():.3f})"
                        ),
                    ),
                ),
                final_membership=len(cluster.live_peers()),
            )
        repair_wait = cluster.simulator.now - quiesce_time

    # -- multicast phase under the scoped tracer --------------------------
    violations: list[Violation] = []
    records: list[MulticastRecord] = []
    ratios: list[float] = []
    duplicates: list[int] = []
    gap_rows: list[tuple[tuple[int, float], ...]] = []
    recovered_rows: list[tuple[int, ...]] = []
    mc_rng = Random(f"faults-mc:{plan.seed}")
    mark = TRACER.mark()
    was_enabled = TRACER.enabled
    TRACER.enable(reset=False)
    try:
        floods_before = cluster.network.stats.delivered_by_kind.get("mc_flood", 0)
        for ordinal in range(plan.multicasts):
            source = cluster.random_live_peer(mc_rng).ident
            mid = cluster.multicast_from(source)
            cluster.run(plan.propagation_window)
            record = reconstruct(TRACER.events_since(mark), mid)
            records.append(record)
            ratios.append(record.delivery_ratio())
            duplicates.append(len(record.duplicates))
            if mode == "failover":
                backup = backup_plan_for_record(
                    record,
                    descriptor,
                    plan.uniform_fanout,
                    membership=epoch_members,
                )
                recovery = apply_failover(
                    record,
                    backup,
                    descriptor,
                    FailoverTiming(detect_delay=cluster.config.rpc_timeout),
                )
                violations.extend(
                    check_failover_multicast(record, recovery, descriptor, ordinal)
                )
                gap_rows.append(sorted_gap_items(delivery_gaps(record, recovery)))
                recovered_rows.append(
                    tuple(item.ident for item in recovery.recovered)
                )
            else:
                violations.extend(check_multicast(record, descriptor, ordinal))
                # The repair path's honest per-member gap charges the
                # stabilization wait the message spent queued before
                # the ring was trusted again, on top of in-tree flight.
                gap_rows.append(
                    tuple(
                        (ident, repair_wait + gap)
                        for ident, gap in sorted_gap_items(delivery_gaps(record))
                    )
                )
                recovered_rows.append(())
        floods_after = cluster.network.stats.delivered_by_kind.get("mc_flood", 0)
    finally:
        if not was_enabled:
            TRACER.disable()
        TRACER.truncate(mark)

    violations.extend(
        check_flood_accounting(records, descriptor, floods_after - floods_before)
    )
    if mode == "failover":
        # Ring hygiene still holds on the failover path — it is checked
        # *after* the measurement instead of gating it: the ring must
        # eventually repair even though the multicast did not wait.
        converged = False
        for _ in range(MAX_REPAIR_ROUNDS):
            if cluster.ring_consistent() and cluster.neighbor_table_accuracy() == 1.0:
                converged = True
                break
            cluster.run(cluster.config.stabilize_interval)
        if not converged:
            violations.append(
                Violation(
                    oracle="convergence",
                    detail=(
                        f"ring failed to repair within {MAX_REPAIR_ROUNDS} "
                        f"stabilization rounds after the failover "
                        f"measurement ({len(cluster.live_peers())} live "
                        f"peers, ring_consistent={cluster.ring_consistent()}, "
                        f"table_accuracy="
                        f"{cluster.neighbor_table_accuracy():.3f})"
                    ),
                )
            )
    violations.extend(check_ring(cluster))

    return PlanOutcome(
        plan=plan,
        violations=tuple(violations),
        delivery_ratios=tuple(ratios),
        duplicates_per_message=tuple(duplicates),
        final_membership=len(cluster.live_peers()),
        mode=mode,
        member_gaps=tuple(gap_rows),
        recovered=tuple(recovered_rows),
        repair_wait=repair_wait,
    )


# -- campaigns ----------------------------------------------------------------


@dataclass
class CampaignResult:
    """Aggregate over one campaign's plan outcomes."""

    outcomes: list[PlanOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[PlanOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    @property
    def plans_run(self) -> int:
        return len(self.outcomes)

    def mean_delivery(self) -> float | None:
        """Average delivery over *measured* runs, or None if none were.

        Guarded through :attr:`ResilienceReport.has_measurements` — an
        outcome that never reached the multicast phase reports NaN
        ratios by design and must not poison the campaign average.
        """
        measured = [
            outcome.report()
            for outcome in self.outcomes
            if outcome.report().has_measurements
        ]
        if not measured:
            return None
        return sum(report.mean_delivery_ratio for report in measured) / len(measured)

    def gap_percentiles(self) -> tuple[float, float] | None:
        """``(p50, p99)`` of per-member delivery gaps over measured
        runs, or ``None`` when no run recorded any.

        Guarded through :attr:`ResilienceReport.has_gap_measurements`,
        matching :meth:`mean_delivery`'s NaN convention — a run that
        never reached the multicast phase must not poison the pool.
        """
        gapped = [
            report
            for report in (outcome.report() for outcome in self.outcomes)
            if report.has_gap_measurements
        ]
        if not gapped:
            return None
        pooled = [gap for report in gapped for gap in report.delivery_gaps]
        return (percentile(pooled, 0.50), percentile(pooled, 0.99))

    def summary(self) -> str:
        mean = self.mean_delivery()
        delivery = f"{mean:.4f}" if mean is not None else "n/a"
        return (
            f"{self.plans_run} plans, {len(self.failures)} failing, "
            f"mean delivery {delivery}"
        )


def _run_task(task: tuple[FaultPlan, str | None]) -> PlanOutcome:
    """Worker entry point (module-level so the pool can pickle it)."""
    plan, peer_ref = task
    peer_class = _resolve_peer_class(peer_ref) if peer_ref else None
    return run_plan(plan, peer_class=peer_class)


def run_campaign(
    plans: Sequence[FaultPlan],
    jobs: int = 1,
    peer_ref: str | None = None,
    progress: Callable[[PlanOutcome], None] | None = None,
) -> CampaignResult:
    """Run every plan, optionally across ``jobs`` worker processes.

    Outcomes come back in plan order regardless of worker scheduling,
    so serial and parallel campaigns aggregate byte-identically; the
    mutant peer travels as a ``module:Class`` reference because classes
    resolve fine by name in a fresh worker but test-local subclasses do
    not always pickle by value.
    """
    tasks = [(plan, peer_ref) for plan in plans]
    result = CampaignResult()
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            outcome = _run_task(task)
            result.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return result
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for outcome in pool.map(_run_task, tasks, chunksize=1):
            result.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    return result


# -- repair vs failover comparison --------------------------------------------


@dataclass(frozen=True)
class FailoverComparison:
    """One plan run down both resilience paths under identical seeds.

    Both outcomes quiesce at the same instant (``last fault event +
    FAILOVER_SETTLE``), so their per-member gaps differ only in the
    resilience mechanism: the repair path charges the stabilization
    wait, the failover path charges detection plus backup hops.
    """

    plan: FaultPlan
    repair: PlanOutcome
    failover: PlanOutcome

    @property
    def passed(self) -> bool:
        return self.repair.passed and self.failover.passed

    def paired_gaps(self) -> list[tuple[float, float]]:
        """``(repair_gap, failover_gap)`` per affected member.

        Paired on ``(multicast ordinal, member)`` over the members the
        failover path actually recovered — the population the backup
        trees exist for.  Members both paths delivered primarily would
        pair trivially and only dilute the comparison.
        """
        pairs: list[tuple[float, float]] = []
        for ordinal, affected in enumerate(self.failover.recovered):
            if not affected or ordinal >= len(self.repair.member_gaps):
                continue
            repair_gaps = dict(self.repair.member_gaps[ordinal])
            failover_gaps = dict(self.failover.member_gaps[ordinal])
            for member in affected:
                if member in repair_gaps and member in failover_gaps:
                    pairs.append((repair_gaps[member], failover_gaps[member]))
        return pairs


@dataclass
class ComparisonResult:
    """Aggregate over one comparison campaign's plan pairs."""

    comparisons: list[FailoverComparison] = field(default_factory=list)

    @property
    def failures(self) -> list[FailoverComparison]:
        return [item for item in self.comparisons if not item.passed]

    @property
    def plans_run(self) -> int:
        return len(self.comparisons)

    def repair_result(self) -> CampaignResult:
        """The repair-path halves as a plain campaign result."""
        return CampaignResult(outcomes=[item.repair for item in self.comparisons])

    def failover_result(self) -> CampaignResult:
        """The failover-path halves as a plain campaign result."""
        return CampaignResult(outcomes=[item.failover for item in self.comparisons])

    def paired_gaps(self) -> list[tuple[float, float]]:
        """Every ``(repair_gap, failover_gap)`` pair across all plans."""
        return [pair for item in self.comparisons for pair in item.paired_gaps()]

    def gap_medians(self) -> tuple[float, float] | None:
        """``(repair_median, failover_median)`` over the paired affected
        members, or ``None`` when no plan orphaned anyone — the headline
        the extO experiment and the bench gate read."""
        pairs = self.paired_gaps()
        if not pairs:
            return None
        return (
            statistics.median(repair for repair, _failover in pairs),
            statistics.median(failover for _repair, failover in pairs),
        )

    def summary(self) -> str:
        medians = self.gap_medians()
        if medians is None:
            gaps = "no affected members"
        else:
            gaps = (
                f"median gap repair={medians[0]:.3f}s "
                f"failover={medians[1]:.3f}s"
            )
        return f"{self.plans_run} plans, {len(self.failures)} failing, {gaps}"


def compare_plan(
    plan: FaultPlan,
    peer_class: "type[BasePeer] | None" = None,
    stale_backup: bool = False,
) -> FailoverComparison:
    """Run one plan down the repair and failover paths under one seed.

    Both runs get ``settle=FAILOVER_SETTLE``: quiescing the repair path
    at the failover path's early quiesce point is what makes the
    comparison honest — the repair path's gap then includes the
    stabilization wait its protocol actually imposes on the damage the
    failover path multicasts straight into.
    """
    repair = run_plan(
        plan, peer_class=peer_class, mode="repair", settle=FAILOVER_SETTLE
    )
    failover = run_plan(
        plan,
        peer_class=peer_class,
        mode="failover",
        settle=FAILOVER_SETTLE,
        stale_backup=stale_backup,
    )
    return FailoverComparison(plan=plan, repair=repair, failover=failover)


def _run_comparison_task(
    task: tuple[FaultPlan, str | None, bool],
) -> FailoverComparison:
    """Worker entry point (module-level so the pool can pickle it)."""
    plan, peer_ref, stale_backup = task
    peer_class = _resolve_peer_class(peer_ref) if peer_ref else None
    return compare_plan(plan, peer_class=peer_class, stale_backup=stale_backup)


def run_comparison_campaign(
    plans: Sequence[FaultPlan],
    jobs: int = 1,
    peer_ref: str | None = None,
    stale_backup: bool = False,
    progress: Callable[[FailoverComparison], None] | None = None,
) -> ComparisonResult:
    """Run every plan down both paths, optionally across processes.

    Same ordered-map pooling as :func:`run_campaign`: comparisons come
    back in plan order, so serial and ``--jobs N`` aggregate
    byte-identically.
    """
    tasks = [(plan, peer_ref, stale_backup) for plan in plans]
    result = ComparisonResult()
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            comparison = _run_comparison_task(task)
            result.comparisons.append(comparison)
            if progress is not None:
                progress(comparison)
        return result
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for comparison in pool.map(_run_comparison_task, tasks, chunksize=1):
            result.comparisons.append(comparison)
            if progress is not None:
                progress(comparison)
    return result


def generate_campaign(
    systems: Iterable[str],
    plans_per_system: int,
    campaign_seed: int = 0,
) -> list[FaultPlan]:
    """The deterministic plan matrix of one campaign invocation."""
    return [
        generate_plan(system, index, campaign_seed)
        for system in systems
        for index in range(plans_per_system)
    ]
