"""Execute fault plans and fan campaigns of them across processes.

:func:`run_plan` is the single-scenario engine: materialize the plan's
frozen membership, bootstrap the live cluster, replay the fault
schedule on the simulated clock, quiesce (heal every partition, zero
every loss rate), wait for the maintenance protocol to repair the
ring, then multicast under the tracer and evaluate every oracle
against the causal reconstruction.  The quiesce-then-check structure
is what makes the oracles *sound*: transient churn may legitimately
lose messages, but a repaired ring must deliver perfectly — so any
violation is a protocol bug the shrinker can minimize.

:func:`run_campaign` fans hundreds of generated plans over worker
processes.  Plans are self-describing values and outcomes are plain
data, so the pool is a straight ordered map — `--jobs N` output is
byte-identical to serial, same as the parallel experiment engine
(:mod:`repro.experiments.parallel`) whose worker-initializer pattern
this follows.
"""

from __future__ import annotations

import importlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.churn.resilience import ResilienceReport
from repro.faults.oracles import (
    Violation,
    check_flood_accounting,
    check_multicast,
    check_ring,
)
from repro.faults.plan import MIN_LIVE_MEMBERS, FaultPlan, generate_plan
from repro.systems import MemberSpec, get_system
from repro.trace.causal import MulticastRecord, reconstruct
from repro.trace.tracer import TRACER

if TYPE_CHECKING:
    from repro.protocol.base_peer import BasePeer
    from repro.protocol.cluster import Cluster
    from repro.sim.latency import LatencyModel

#: Stabilization rounds granted for post-fault ring repair before the
#: convergence oracle gives up.  Generous on purpose: convergence
#: failures should mean "repair is broken", not "repair is slow".
MAX_REPAIR_ROUNDS = 400


@dataclass(frozen=True)
class PlanOutcome:
    """Everything one plan execution produced, as plain data.

    Violations are ordered by evaluation (multicast ordinal, then
    oracle); two executions of the same plan produce identical
    outcomes — the determinism contract ``tests/conftest.py`` enforces.
    """

    plan: FaultPlan
    violations: tuple[Violation, ...] = ()
    delivery_ratios: tuple[float, ...] = ()
    duplicates_per_message: tuple[int, ...] = ()
    final_membership: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def measured(self) -> bool:
        """True when the multicast phase ran (bootstrap + repair ok)."""
        return bool(self.delivery_ratios)

    def report(self) -> ResilienceReport:
        """The outcome as the churn layer's standard report shape."""
        return ResilienceReport(
            system=self.plan.system,
            churn_rate=0.0,
            delivery_ratios=list(self.delivery_ratios),
            duplicates_per_message=list(self.duplicates_per_message),
            final_membership=self.final_membership,
        )

    def summary(self) -> str:
        verdict = "ok" if self.passed else f"{len(self.violations)} violation(s)"
        return f"{self.plan.describe()}: {verdict}"


def _resolve_peer_class(ref: str) -> type["BasePeer"]:
    """Import ``module:Class`` — the replay CLI's mutant hook."""
    module_name, _, class_name = ref.partition(":")
    if not class_name:
        raise ValueError(f"peer class ref must be 'module:Class', got {ref!r}")
    module = importlib.import_module(module_name)
    return getattr(module, class_name)


def _apply_event(cluster: "Cluster", event) -> None:
    """Apply one fault primitive to the live cluster, rank-resolved."""
    if event.action in ("crash", "leave"):
        live = cluster.live_peers()
        if len(live) <= MIN_LIVE_MEMBERS:
            return  # never grind the ring below the floor
        victim = live[event.a % len(live)]
        cluster.remove_peer(victim.ident, crash=(event.action == "crash"))
    elif event.action == "join":
        try:
            cluster.add_peer(max(event.capacity, 1))
        except RuntimeError:
            pass  # no live bootstrap peer left; the ring oracle will say so
    elif event.action == "partition":
        live = cluster.live_peers()
        if len(live) < 2:
            return
        first = live[event.a % len(live)]
        second = live[event.b % len(live)]
        if first.ident != second.ident:
            cluster.partition(first.ident, second.ident)
    elif event.action == "heal":
        cluster.heal_all_partitions()
    elif event.action == "loss":
        cluster.set_loss_rate(event.rate)
    elif event.action == "kind_loss":
        cluster.set_kind_loss(event.kind, event.rate)


def run_plan(
    plan: FaultPlan,
    peer_class: "type[BasePeer] | None" = None,
    member_spec: "MemberSpec | None" = None,
    latency: "LatencyModel | None" = None,
) -> PlanOutcome:
    """Execute one fault plan end to end and judge it with the oracles.

    ``peer_class`` substitutes the live peer implementation while the
    plan's system descriptor still defines the invariants to hold it to
    — that is how the mutation tests prove the oracles have teeth.

    ``member_spec`` overrides the plan-seed-generated membership with an
    explicitly materialized one (the scenario compiler's topology axis:
    non-uniform capacity laws, Hilbert-geographic identifier placement);
    it must describe exactly ``plan.size`` members.  ``latency``
    likewise overrides the cluster's default constant-latency network.
    Both hooks leave the plan itself untouched, so determinism still
    derives from frozen values only.
    """
    from repro.protocol.cluster import Cluster

    descriptor = get_system(plan.system)
    if member_spec is not None:
        if len(member_spec) != plan.size:
            raise ValueError(
                f"member spec has {len(member_spec)} members but the plan "
                f"needs {plan.size}"
            )
        spec = member_spec
    else:
        spec = MemberSpec.generate(
            plan.size,
            space_bits=plan.space_bits,
            capacity_range=plan.capacity_range,
            seed=plan.seed,
        )
    cluster = Cluster(
        peer_class if peer_class is not None else descriptor,
        spec,
        latency=latency,
        seed=plan.seed,
        uniform_fanout=plan.uniform_fanout,
    )

    try:
        cluster.bootstrap()
    except RuntimeError as exc:
        return PlanOutcome(
            plan=plan,
            violations=(Violation(oracle="bootstrap", detail=str(exc)),),
        )

    # -- fault window -----------------------------------------------------
    origin = cluster.simulator.now
    for event in sorted(plan.events, key=lambda e: (e.time, e.action)):
        cluster.simulator.call_at(
            origin + event.time, lambda e=event: _apply_event(cluster, e)
        )
    cluster.run(plan.fault_window + 2.0)

    # -- quiesce and repair ----------------------------------------------
    cluster.clear_fault_injection()
    converged = False
    for _ in range(MAX_REPAIR_ROUNDS):
        if cluster.ring_consistent() and cluster.neighbor_table_accuracy() == 1.0:
            converged = True
            break
        cluster.run(cluster.config.stabilize_interval)
    if not converged:
        return PlanOutcome(
            plan=plan,
            violations=(
                Violation(
                    oracle="convergence",
                    detail=(
                        f"ring failed to repair within {MAX_REPAIR_ROUNDS} "
                        f"stabilization rounds after quiesce "
                        f"({len(cluster.live_peers())} live peers, "
                        f"ring_consistent={cluster.ring_consistent()}, "
                        f"table_accuracy="
                        f"{cluster.neighbor_table_accuracy():.3f})"
                    ),
                ),
            ),
            final_membership=len(cluster.live_peers()),
        )

    # -- multicast phase under the scoped tracer --------------------------
    violations: list[Violation] = []
    records: list[MulticastRecord] = []
    ratios: list[float] = []
    duplicates: list[int] = []
    mc_rng = Random(f"faults-mc:{plan.seed}")
    mark = TRACER.mark()
    was_enabled = TRACER.enabled
    TRACER.enable(reset=False)
    try:
        floods_before = cluster.network.stats.delivered_by_kind.get("mc_flood", 0)
        for ordinal in range(plan.multicasts):
            source = cluster.random_live_peer(mc_rng).ident
            mid = cluster.multicast_from(source)
            cluster.run(plan.propagation_window)
            record = reconstruct(TRACER.events_since(mark), mid)
            records.append(record)
            ratios.append(record.delivery_ratio())
            duplicates.append(len(record.duplicates))
            violations.extend(check_multicast(record, descriptor, ordinal))
        floods_after = cluster.network.stats.delivered_by_kind.get("mc_flood", 0)
    finally:
        if not was_enabled:
            TRACER.disable()
        TRACER.truncate(mark)

    violations.extend(
        check_flood_accounting(records, descriptor, floods_after - floods_before)
    )
    violations.extend(check_ring(cluster))

    return PlanOutcome(
        plan=plan,
        violations=tuple(violations),
        delivery_ratios=tuple(ratios),
        duplicates_per_message=tuple(duplicates),
        final_membership=len(cluster.live_peers()),
    )


# -- campaigns ----------------------------------------------------------------


@dataclass
class CampaignResult:
    """Aggregate over one campaign's plan outcomes."""

    outcomes: list[PlanOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[PlanOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    @property
    def plans_run(self) -> int:
        return len(self.outcomes)

    def mean_delivery(self) -> float | None:
        """Average delivery over *measured* runs, or None if none were.

        Guarded through :attr:`ResilienceReport.has_measurements` — an
        outcome that never reached the multicast phase reports NaN
        ratios by design and must not poison the campaign average.
        """
        measured = [
            outcome.report()
            for outcome in self.outcomes
            if outcome.report().has_measurements
        ]
        if not measured:
            return None
        return sum(report.mean_delivery_ratio for report in measured) / len(measured)

    def summary(self) -> str:
        mean = self.mean_delivery()
        delivery = f"{mean:.4f}" if mean is not None else "n/a"
        return (
            f"{self.plans_run} plans, {len(self.failures)} failing, "
            f"mean delivery {delivery}"
        )


def _run_task(task: tuple[FaultPlan, str | None]) -> PlanOutcome:
    """Worker entry point (module-level so the pool can pickle it)."""
    plan, peer_ref = task
    peer_class = _resolve_peer_class(peer_ref) if peer_ref else None
    return run_plan(plan, peer_class=peer_class)


def run_campaign(
    plans: Sequence[FaultPlan],
    jobs: int = 1,
    peer_ref: str | None = None,
    progress: Callable[[PlanOutcome], None] | None = None,
) -> CampaignResult:
    """Run every plan, optionally across ``jobs`` worker processes.

    Outcomes come back in plan order regardless of worker scheduling,
    so serial and parallel campaigns aggregate byte-identically; the
    mutant peer travels as a ``module:Class`` reference because classes
    resolve fine by name in a fresh worker but test-local subclasses do
    not always pickle by value.
    """
    tasks = [(plan, peer_ref) for plan in plans]
    result = CampaignResult()
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            outcome = _run_task(task)
            result.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return result
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for outcome in pool.map(_run_task, tasks, chunksize=1):
            result.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    return result


def generate_campaign(
    systems: Iterable[str],
    plans_per_system: int,
    campaign_seed: int = 0,
) -> list[FaultPlan]:
    """The deterministic plan matrix of one campaign invocation."""
    return [
        generate_plan(system, index, campaign_seed)
        for system in systems
        for index in range(plans_per_system)
    ]
