"""Declarative fault-injection campaigns with invariant oracles.

The resilience experiments measure *how well* the live protocols
survive churn; this package interrogates *whether they are correct*
under adversarial schedules.  A frozen :class:`FaultPlan` scripts
crashes, leaves, joins, partitions, loss bursts and timeout storms
against a live cluster; after the network quiesces and the ring
repairs, every multicast is judged by the :mod:`oracle
<repro.faults.oracles>` suite — delivery completeness against the
frozen membership, exactly-once delivery for tree systems, per-node
fanout within capacity, successor-ring ground truth, and flood
datagram accounting — with each violation citing the trace-causal
lost hop.

Campaigns fan hundreds of seed-deterministic plans across all four
registered systems (``python -m repro.faults campaign``, also
experiment ``extK``); a failing plan is handed to the
:mod:`shrinker <repro.faults.shrink>`, which minimizes it to a
smallest still-failing scenario saved as JSON and replayable forever
via ``python -m repro.faults replay``.
"""

from repro.faults.campaign import (
    FAILOVER_SETTLE,
    MODES,
    CampaignResult,
    ComparisonResult,
    FailoverComparison,
    PlanOutcome,
    compare_plan,
    generate_campaign,
    run_campaign,
    run_comparison_campaign,
    run_plan,
)
from repro.faults.oracles import ORACLES, Violation
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    crash_at,
    flash_churn,
    generate_plan,
    join_at,
    leave_at,
    load_plan,
    loss_burst,
    message_loss_burst,
    partition_window,
    save_plan,
    summarize_events,
    timeout_storm,
)
from repro.faults.shrink import shrink_plan

__all__ = [
    "CampaignResult",
    "ComparisonResult",
    "FAILOVER_SETTLE",
    "FailoverComparison",
    "FaultEvent",
    "FaultPlan",
    "MODES",
    "ORACLES",
    "PlanOutcome",
    "Violation",
    "compare_plan",
    "crash_at",
    "flash_churn",
    "generate_campaign",
    "generate_plan",
    "join_at",
    "leave_at",
    "load_plan",
    "loss_burst",
    "message_loss_burst",
    "partition_window",
    "run_campaign",
    "run_comparison_campaign",
    "run_plan",
    "save_plan",
    "shrink_plan",
    "summarize_events",
    "timeout_storm",
]
