"""Fault-injection CLI: generate, campaign, replay, shrink.

::

    # one deterministic plan, printed or saved
    python -m repro.faults gen --system cam-chord --index 3 --out plan.json

    # a campaign over every registered system; failing plans are
    # shrunk and their minimized repros written next to the results
    python -m repro.faults campaign --plans 25 --jobs 4 --out-dir faults_out

    # re-run one saved scenario; prints its violations and exits 1 if
    # any oracle fires — byte-identical output on every invocation
    python -m repro.faults replay faults_out/min-cam-chord-3.json

    # minimize a failing scenario by hand
    python -m repro.faults shrink plan.json --out minimal.json

    # run every plan down BOTH resilience paths (quiesce-then-repair
    # and precomputed-backup failover) under identical seeds and
    # compare per-member delivery-gap distributions
    python -m repro.faults campaign --failover --plans 8 --jobs 2

    # replay one scenario on the failover path; --stale-backup builds
    # the backup from the pre-fault epoch (the oracle must catch it)
    python -m repro.faults replay plan.json --failover --stale-backup

``--peer-class module:Class`` substitutes the live peer implementation
(capacities verbatim) while keeping the named system's oracles — the
hook the mutation tests use to prove a deliberately broken peer is
caught and minimized.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.common import SEED_HELP
from repro.faults.campaign import (
    _resolve_peer_class,
    generate_campaign,
    run_campaign,
    run_comparison_campaign,
    run_plan,
)
from repro.faults.plan import generate_plan, load_plan, save_plan
from repro.faults.shrink import shrink_plan
from repro.systems import system_names


def _print_outcome(outcome) -> None:
    print(outcome.summary())
    for violation in outcome.violations:
        print(f"  {violation}")


def _print_comparison(comparison) -> None:
    for outcome in (comparison.repair, comparison.failover):
        print(f"[{outcome.mode}] {outcome.summary()}")
        for violation in outcome.violations:
            print(f"  {violation}")


def _cmd_gen(args: argparse.Namespace) -> int:
    plan = generate_plan(args.system, args.index, args.seed)
    if args.out:
        save_plan(plan, args.out)
        print(f"wrote {args.out}: {plan.describe()}")
    else:
        print(plan.describe())
        for event in plan.events:
            print(f"  t={event.time:6.2f} {event.action} {event.to_json_dict()}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    systems = args.systems.split(",") if args.systems else list(system_names())
    plans = generate_campaign(systems, args.plans, args.seed)
    print(
        f"campaign: {len(plans)} plans "
        f"({args.plans} x {len(systems)} systems), seed={args.seed}, "
        f"jobs={args.jobs}"
    )
    if args.failover:
        return _run_failover_campaign(args, plans)
    result = run_campaign(
        plans,
        jobs=args.jobs,
        peer_ref=args.peer_class,
        progress=None if args.quiet else _print_outcome,
    )
    print(result.summary())

    failures = result.failures
    if failures and args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        peer_class = (
            _resolve_peer_class(args.peer_class) if args.peer_class else None
        )
        for index, outcome in enumerate(failures):
            minimized, final = shrink_plan(
                outcome.plan,
                runner=lambda p: run_plan(p, peer_class=peer_class),
                log=None if args.quiet else print,
            )
            path = os.path.join(
                args.out_dir, f"min-{minimized.system}-{index}.json"
            )
            save_plan(
                minimized,
                path,
                extra={
                    "violations": [str(v) for v in final.violations],
                    "original": outcome.plan.to_json_dict(),
                },
            )
            print(f"minimized repro written: {path} ({minimized.describe()})")
    return 1 if failures else 0


def _run_failover_campaign(args: argparse.Namespace, plans) -> int:
    """``campaign --failover``: both paths per plan, identical seeds.

    Failing comparisons are shrunk against whichever path failed — the
    failover runner when the delivery-gap (or any failover-path) oracle
    fired, the plain repair runner otherwise — so the minimized repro
    replays with the matching ``replay`` flags.
    """
    result = run_comparison_campaign(
        plans,
        jobs=args.jobs,
        peer_ref=args.peer_class,
        stale_backup=args.stale_backup,
        progress=None if args.quiet else _print_comparison,
    )
    print(result.summary())

    failures = result.failures
    if failures and args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        peer_class = (
            _resolve_peer_class(args.peer_class) if args.peer_class else None
        )
        for index, comparison in enumerate(failures):
            if not comparison.failover.passed:
                def runner(p):
                    return run_plan(
                        p,
                        peer_class=peer_class,
                        mode="failover",
                        stale_backup=args.stale_backup,
                    )
            else:
                def runner(p):
                    return run_plan(p, peer_class=peer_class)
            minimized, final = shrink_plan(
                comparison.plan,
                runner=runner,
                log=None if args.quiet else print,
            )
            path = os.path.join(
                args.out_dir, f"min-failover-{minimized.system}-{index}.json"
            )
            save_plan(
                minimized,
                path,
                extra={
                    "mode": final.mode,
                    "violations": [str(v) for v in final.violations],
                    "original": comparison.plan.to_json_dict(),
                },
            )
            print(f"minimized repro written: {path} ({minimized.describe()})")
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    plan = load_plan(args.plan)
    peer_class = _resolve_peer_class(args.peer_class) if args.peer_class else None
    outcome = run_plan(
        plan,
        peer_class=peer_class,
        mode="failover" if args.failover else "repair",
        stale_backup=args.stale_backup,
    )
    _print_outcome(outcome)
    return 1 if outcome.violations else 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    plan = load_plan(args.plan)
    peer_class = _resolve_peer_class(args.peer_class) if args.peer_class else None
    minimized, final = shrink_plan(
        plan,
        runner=lambda p: run_plan(p, peer_class=peer_class),
        log=None if args.quiet else print,
    )
    if args.out:
        save_plan(
            minimized,
            args.out,
            extra={"violations": [str(v) for v in final.violations]},
        )
        print(f"wrote {args.out}: {minimized.describe()}")
    else:
        _print_outcome(final)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection campaigns, replay and shrinking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate one deterministic plan")
    gen.add_argument("--system", required=True, choices=system_names())
    gen.add_argument("--index", type=int, default=0)
    gen.add_argument("--seed", type=int, default=0, help=SEED_HELP)
    gen.add_argument("--out", default="")
    gen.set_defaults(func=_cmd_gen)

    camp = sub.add_parser("campaign", help="run a plan matrix, shrink failures")
    camp.add_argument(
        "--systems",
        default="",
        help="comma-separated system names (default: all registered)",
    )
    camp.add_argument("--plans", type=int, default=25, help="plans per system")
    camp.add_argument("--seed", type=int, default=0, help=SEED_HELP)
    camp.add_argument("--jobs", type=int, default=1)
    camp.add_argument("--out-dir", default="", help="where minimized repros go")
    camp.add_argument("--peer-class", default="", help="module:Class override")
    camp.add_argument(
        "--failover",
        action="store_true",
        help="run every plan down both resilience paths and compare gaps",
    )
    camp.add_argument(
        "--stale-backup",
        action="store_true",
        help="build backups from the pre-fault epoch (oracle must object)",
    )
    camp.add_argument("--quiet", action="store_true")
    camp.set_defaults(func=_cmd_campaign)

    replay = sub.add_parser("replay", help="re-run one saved scenario")
    replay.add_argument("plan", help="plan JSON written by save_plan")
    replay.add_argument("--peer-class", default="", help="module:Class override")
    replay.add_argument(
        "--failover",
        action="store_true",
        help="replay on the precomputed-backup failover path",
    )
    replay.add_argument(
        "--stale-backup",
        action="store_true",
        help="build the backup from the pre-fault epoch",
    )
    replay.set_defaults(func=_cmd_replay)

    shrink = sub.add_parser("shrink", help="minimize a failing scenario")
    shrink.add_argument("plan", help="plan JSON written by save_plan")
    shrink.add_argument("--out", default="")
    shrink.add_argument("--peer-class", default="", help="module:Class override")
    shrink.add_argument("--quiet", action="store_true")
    shrink.set_defaults(func=_cmd_shrink)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
