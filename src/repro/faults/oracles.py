"""Invariant oracles evaluated after every multicast of a fault plan.

Each oracle inspects one reconstructed
:class:`~repro.trace.causal.MulticastRecord` (or the cluster itself)
and reports :class:`Violation` values — structured, hashable, and
citing the trace-causal lost hop so a failure names the exact
(sender, receiver, reason) where propagation died instead of just a
ratio below 1.0.

The oracles run *after quiescence*: the campaign injects faults, heals
the network, waits for the maintenance protocol to repair the ring,
and only then multicasts.  On a correct implementation every oracle
therefore passes — delivery is complete over the frozen live
membership, tree systems deliver exactly once, no node forwards past
its capacity, and the successor ring matches ground truth.  A
violation on a converged ring is a protocol bug, not bad luck.

Violations identify multicasts by plan-local *ordinal* (0-based send
order), never by raw message id: message ids come from a process-global
counter, so they differ between runs that share one process and runs
that do not.  Ordinals make violation sets byte-comparable across
serial, parallel and replay executions — the determinism property the
shrinker and the tests lean on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.trace.causal import Hop, MulticastRecord, lost_hops

if TYPE_CHECKING:
    from repro.protocol.cluster import Cluster
    from repro.systems import SystemDescriptor

#: Names of every per-multicast and cluster-level oracle, for docs/CLI.
ORACLES = (
    "bootstrap",
    "convergence",
    "delivery",
    "delivery-gap",
    "duplicates",
    "fanout",
    "ring",
    "flood-accounting",
)


@dataclass(frozen=True)
class Violation:
    """One oracle failure, fully describable without the live objects.

    ``multicast`` is the plan-local ordinal (-1 for cluster-level
    oracles that are not tied to one message).  ``members`` lists the
    affected identifiers; ``lost`` the formatted causal lost hops.
    """

    oracle: str
    detail: str
    multicast: int = -1
    members: tuple[int, ...] = ()
    lost: tuple[str, ...] = ()

    def __str__(self) -> str:
        where = f" mc#{self.multicast}" if self.multicast >= 0 else ""
        body = f"[{self.oracle}]{where} {self.detail}"
        if self.lost:
            body += "".join(f"\n    lost hop: {line}" for line in self.lost)
        return body


def _format_hop(member: int, hop: Hop) -> str:
    return hop.describe(member)


# -- per-multicast oracles ----------------------------------------------------


def check_delivery(record: MulticastRecord, ordinal: int) -> list[Violation]:
    """Every eligible member (alive at send, did not depart) delivers.

    The failure cites each missing member's causal lost hop — the
    dropped datagram or the stalled region holder that cut it off.
    """
    missing = sorted(record.undelivered)
    if not missing:
        return []
    hops = lost_hops(record)
    return [
        Violation(
            oracle="delivery",
            multicast=ordinal,
            detail=(
                f"{len(missing)} of {len(record.eligible_members)} eligible "
                f"members undelivered (ratio {record.delivery_ratio():.4f})"
            ),
            members=tuple(missing),
            lost=tuple(
                _format_hop(member, hops[member])
                for member in missing
                if member in hops
            ),
        )
    ]


def check_duplicates(
    record: MulticastRecord, descriptor: "SystemDescriptor", ordinal: int
) -> list[Violation]:
    """Tree systems deliver exactly once — region spans never overlap.

    Flood systems legitimately produce duplicates (the dedup layer
    absorbs them); their accounting is checked by the campaign's
    flood-accounting oracle instead.
    """
    if not descriptor.builds_single_tree or not record.duplicates:
        return []
    dupes = sorted({ident for ident, _, _ in record.duplicates})
    detail_parts = [
        f"{ident} (again from {sender} at t={when:.3f})"
        for ident, sender, when in record.duplicates[:5]
    ]
    return [
        Violation(
            oracle="duplicates",
            multicast=ordinal,
            detail=(
                f"tree system {record.system} delivered duplicates to "
                f"{len(dupes)} members: " + ", ".join(detail_parts)
            ),
            members=tuple(dupes),
        )
    ]


def check_fanout(
    record: MulticastRecord, descriptor: "SystemDescriptor", ordinal: int
) -> list[Violation]:
    """No node parents more children than its capacity allows.

    The bound is the descriptor's live fanout bound — capacity itself
    for the CAM systems, capacity plus the documented ring-link slack
    for floods that also forward over predecessor/successor.
    """
    children: dict[int, int] = {}
    for parent, _child in record.actual_edges():
        children[parent] = children.get(parent, 0) + 1
    offenders = []
    for parent, count in sorted(children.items()):
        capacity = record.capacities.get(parent)
        if capacity is None:
            continue  # joined after origin; no frozen capacity to hold it to
        if count > descriptor.live_fanout_bound(capacity):
            offenders.append((parent, count, capacity))
    if not offenders:
        return []
    detail = ", ".join(
        f"node {parent} fed {count} children (capacity {capacity}, "
        f"bound {descriptor.live_fanout_bound(capacity)})"
        for parent, count, capacity in offenders
    )
    return [
        Violation(
            oracle="fanout",
            multicast=ordinal,
            detail=detail,
            members=tuple(parent for parent, _, _ in offenders),
        )
    ]


def check_multicast(
    record: MulticastRecord, descriptor: "SystemDescriptor", ordinal: int
) -> list[Violation]:
    """All per-multicast oracles over one causal record."""
    violations = check_delivery(record, ordinal)
    violations.extend(check_duplicates(record, descriptor, ordinal))
    violations.extend(check_fanout(record, descriptor, ordinal))
    return violations


def check_delivery_gap(
    record: MulticastRecord,
    recovery,
    descriptor: "SystemDescriptor",
    ordinal: int,
) -> list[Violation]:
    """Failover mode's delivery oracle: every eligible member reaches
    eventual delivery with a finite, positive gap from ``mc.origin``.

    ``recovery`` is the :class:`~repro.multicast.backup.FailoverRecovery`
    of this multicast.  Three failure shapes:

    * an orphan the installed backup could not reattach (a stale plan
      that does not know the member, or no candidate with spare
      fanout) — cited with its causal lost hop;
    * a recovered gap that is non-finite or does not come strictly
      after the origin (a broken timing model, not a slow path);
    * a graft that pushes its backup parent past the descriptor's
      ``live_fanout_bound`` counting the parent's primary children —
      the same invariant :func:`check_fanout` holds the primary tree
      to, re-checked here because grafts add load the record's edges
      do not show.
    """
    violations: list[Violation] = []
    if recovery.uncovered:
        hops = lost_hops(record)
        violations.append(
            Violation(
                oracle="delivery-gap",
                multicast=ordinal,
                detail=(
                    f"{len(recovery.uncovered)} of "
                    f"{len(record.eligible_members)} eligible members have "
                    f"no eventual delivery: installed backup covers neither "
                    f"primary nor graft path"
                ),
                members=tuple(recovery.uncovered),
                lost=tuple(
                    _format_hop(member, hops[member])
                    for member in recovery.uncovered
                    if member in hops
                ),
            )
        )
    bad_gaps = [
        (item.ident, item.time - record.origin_time)
        for item in recovery.recovered
        if not math.isfinite(item.time - record.origin_time)
        or item.time - record.origin_time <= 0.0
    ]
    if bad_gaps:
        detail = ", ".join(f"{ident}: {gap!r}" for ident, gap in bad_gaps[:5])
        violations.append(
            Violation(
                oracle="delivery-gap",
                multicast=ordinal,
                detail=f"{len(bad_gaps)} recovered members with non-causal gaps: {detail}",
                members=tuple(ident for ident, _ in bad_gaps),
            )
        )
    primary_children: dict[int, int] = {}
    for parent, _child in record.actual_edges():
        primary_children[parent] = primary_children.get(parent, 0) + 1
    offenders = []
    for parent, graft_count in sorted(recovery.graft_load().items()):
        capacity = record.capacities.get(parent)
        if capacity is None:
            continue
        total = primary_children.get(parent, 0) + graft_count
        if total > descriptor.live_fanout_bound(capacity):
            offenders.append((parent, total, capacity))
    if offenders:
        detail = ", ".join(
            f"backup parent {parent} fed {total} children "
            f"(capacity {capacity}, bound {descriptor.live_fanout_bound(capacity)})"
            for parent, total, capacity in offenders
        )
        violations.append(
            Violation(
                oracle="delivery-gap",
                multicast=ordinal,
                detail=detail,
                members=tuple(parent for parent, _, _ in offenders),
            )
        )
    return violations


def check_failover_multicast(
    record: MulticastRecord,
    recovery,
    descriptor: "SystemDescriptor",
    ordinal: int,
) -> list[Violation]:
    """Per-multicast oracles for the failover path.

    The delivery-gap oracle replaces plain delivery (eventual delivery
    over the installed backup counts); the duplicates oracle is
    *skipped* because the primary multicast runs into a deliberately
    unrepaired ring, where stale region handoffs may legitimately
    overlap — exactly-once is a converged-ring invariant, not a
    mid-failure one.  Fanout stays: even a broken ring must not let a
    node feed past its capacity bound.
    """
    violations = check_delivery_gap(record, recovery, descriptor, ordinal)
    violations.extend(check_fanout(record, descriptor, ordinal))
    return violations


# -- cluster-level oracles ----------------------------------------------------


def check_ring(cluster: "Cluster") -> list[Violation]:
    """The successor ring matches ground truth after the run.

    The repair protocol had its quiescence window; a broken ring now
    is a convergence failure, not transient churn.
    """
    if cluster.ring_consistent():
        return []
    live = cluster.live_peers()
    wrong = []
    for index, peer in enumerate(live):
        expected = live[(index + 1) % len(live)].ident
        if peer.successor != expected:
            wrong.append((peer.ident, peer.successor, expected))
    detail = ", ".join(
        f"{ident}.successor={got} (expected {want})"
        for ident, got, want in wrong[:5]
    )
    return [
        Violation(
            oracle="ring",
            detail=f"{len(wrong)} stale successor pointers: {detail}",
            members=tuple(ident for ident, _, _ in wrong),
        )
    ]


def check_flood_accounting(
    records: list[MulticastRecord],
    descriptor: "SystemDescriptor",
    delivered_floods: int,
) -> list[Violation]:
    """Flood datagram accounting balances against the network counters.

    On a quiesced ring with no loss, every ``mc_flood`` datagram the
    network delivered is either some member's first delivery or a
    recorded duplicate: ``delivered == Σ (first_deliveries - 1 +
    duplicates)`` over the phase's multicasts (the source's own
    delivery rides no datagram).  An imbalance means a delivery the
    dedup layer never accounted for — precisely the books a broken
    duplicate-suppression mutant cooks.
    """
    if descriptor.builds_single_tree or not records:
        return []
    expected = sum(
        (len(record.deliveries) - 1) + len(record.duplicates)
        for record in records
    )
    if delivered_floods == expected:
        return []
    return [
        Violation(
            oracle="flood-accounting",
            detail=(
                f"network delivered {delivered_floods} mc_flood datagrams "
                f"but per-member accounting explains {expected} "
                f"(first deliveries + recorded duplicates over "
                f"{len(records)} multicasts)"
            ),
        )
    ]
