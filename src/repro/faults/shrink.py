"""Minimize a failing fault plan to its smallest still-failing core.

When a campaign plan trips an oracle, the raw scenario is usually
noisy: twenty members, four overlapping fault primitives, several
multicasts.  The shrinker whittles it down with three deterministic
passes, re-running the plan after every candidate edit:

1. **drop events** — delta-debugging (ddmin) over the event schedule:
   remove chunks, then halve the chunk size, until no single event can
   go;
2. **shrink the cluster** — retry the plan at smaller member counts,
   keeping the smallest that still fails;
3. **tighten the frame** — fewer multicasts and a fault window cut to
   just past the last surviving event.

Because plans are frozen values and executions are seed-deterministic,
"still fails" is a pure function of the candidate plan — outcomes are
memoized by plan, and the minimized scenario replays the identical
violation set forever (``python -m repro.faults replay``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.faults.campaign import PlanOutcome, run_plan
from repro.faults.plan import FaultPlan

#: Member counts tried (ascending) by the cluster-shrinking pass.
SHRINK_SIZES = (4, 6, 8, 12, 16)

Runner = Callable[[FaultPlan], PlanOutcome]


def shrink_plan(
    plan: FaultPlan,
    runner: Runner = run_plan,
    log: Callable[[str], None] | None = None,
) -> tuple[FaultPlan, PlanOutcome]:
    """The smallest still-failing variant of ``plan`` and its outcome.

    ``runner`` executes a candidate (the mutation tests pass a closure
    that injects their broken peer class).  ``plan`` itself must fail
    under ``runner``; raises ``ValueError`` otherwise — shrinking a
    passing plan would silently return garbage.
    """
    cache: dict[FaultPlan, PlanOutcome] = {}

    def outcome_of(candidate: FaultPlan) -> PlanOutcome:
        cached = cache.get(candidate)
        if cached is None:
            cached = runner(candidate)
            cache[candidate] = cached
        return cached

    def fails(candidate: FaultPlan) -> bool:
        return not outcome_of(candidate).passed

    def note(message: str) -> None:
        if log is not None:
            log(message)

    if not fails(plan):
        raise ValueError(f"plan does not fail; nothing to shrink: {plan.describe()}")

    current = plan

    # Pass 1: ddmin over the event schedule.
    events = list(current.events)
    chunk = max(1, len(events) // 2)
    while events:
        start = 0
        while start < len(events):
            candidate_events = events[:start] + events[start + chunk:]
            candidate = current.with_events(candidate_events)
            if fails(candidate):
                events = candidate_events
                current = candidate
                note(f"dropped {chunk} event(s) -> {len(events)} remain")
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)

    # Pass 2: smallest cluster that still fails.
    for size in SHRINK_SIZES:
        if size >= current.size:
            break
        candidate = replace(current, size=size)
        if fails(candidate):
            current = candidate
            note(f"shrank cluster to n={size}")
            break

    # Pass 3: tighten the frame — one multicast, minimal window.
    if current.multicasts > 1:
        candidate = replace(current, multicasts=1)
        if fails(candidate):
            current = candidate
            note("reduced to a single multicast")
    last_event = max((event.time for event in current.events), default=0.0)
    tight_window = last_event + 1.0
    if tight_window < current.fault_window:
        candidate = replace(current, fault_window=tight_window)
        if fails(candidate):
            current = candidate
            note(f"tightened fault window to {tight_window:.1f}s")

    final = outcome_of(current)
    note(
        f"minimized: {len(plan.events)} -> {len(current.events)} events, "
        f"n={plan.size} -> {current.size}, "
        f"{len(final.violations)} violation(s) preserved"
    )
    return current, final
