"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` freezes one complete chaos scenario: which system
runs, how many members it starts with (drawn from the plan's seed as a
:class:`~repro.systems.MemberSpec`), and a time-ordered schedule of
:class:`FaultEvent` primitives applied to the live cluster — crashes,
graceful leaves, joins, pairwise ring partitions and heals, global and
per-message-kind loss bursts (the latter doubling as timeout storms
when aimed at the maintenance RPC kinds), and flash churn bursts.

Plans are *values*: frozen, hashable, JSON round-trippable, and every
byte of their execution derives from their fields — the same plan run
twice produces the same violation set (``tests`` assert exactly this).
That is what makes the shrinker possible: a candidate plan either
still fails or it does not, with no retry noise.

Victims are addressed by *rank*, not identifier: a crash event's ``a``
selects the ``a mod len(live)``-th live member at apply time.  Ranks
survive shrinking (dropping an earlier event changes who is alive, but
the plan still replays deterministically), whereas raw identifiers
would dangle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from random import Random
from typing import Any, Iterable, Sequence

#: Fault actions a plan may schedule.  ``heal`` heals *all* active
#: partitions (pairwise bookkeeping does not survive shrinking);
#: ``loss`` sets the global rate; ``kind_loss`` the per-kind rate.
ACTIONS = ("crash", "leave", "join", "partition", "heal", "loss", "kind_loss")

#: Maintenance RPC kinds a timeout storm starves.
MAINTENANCE_KINDS = ("get_info", "next_hop", "ping")

#: Never crash or leave below this many live members — a plan that
#: kills the whole ring proves nothing about multicast resilience.
MIN_LIVE_MEMBERS = 4


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault primitive.

    ``time`` is seconds after the post-bootstrap clock origin.  ``a``
    and ``b`` are live-member ranks (resolved at apply time, modulo the
    live count); ``rate``/``kind`` parameterize the loss actions;
    ``capacity`` the join action.
    """

    time: float
    action: str
    a: int = 0
    b: int = 0
    rate: float = 0.0
    kind: str = ""
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from {ACTIONS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"t": self.time, "action": self.action}
        if self.a:
            out["a"] = self.a
        if self.b:
            out["b"] = self.b
        if self.rate:
            out["rate"] = self.rate
        if self.kind:
            out["kind"] = self.kind
        if self.capacity:
            out["capacity"] = self.capacity
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "FaultEvent":
        return cls(
            time=float(raw["t"]),
            action=str(raw["action"]),
            a=int(raw.get("a", 0)),
            b=int(raw.get("b", 0)),
            rate=float(raw.get("rate", 0.0)),
            kind=str(raw.get("kind", "")),
            capacity=int(raw.get("capacity", 0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """One frozen chaos scenario for one system."""

    system: str
    size: int
    seed: int
    events: tuple[FaultEvent, ...] = ()
    space_bits: int = 12
    capacity_range: tuple[int, int] = (4, 8)
    uniform_fanout: int = 4
    fault_window: float = 30.0
    multicasts: int = 2
    propagation_window: float = 15.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.size < MIN_LIVE_MEMBERS:
            raise ValueError(
                f"plan needs >= {MIN_LIVE_MEMBERS} members, got {self.size}"
            )
        if self.multicasts < 0:
            raise ValueError(f"multicasts must be >= 0, got {self.multicasts}")
        for event in self.events:
            if event.time > self.fault_window:
                raise ValueError(
                    f"event at t={event.time} outside fault window "
                    f"{self.fault_window}"
                )

    def with_events(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """The same plan with a different event schedule."""
        return replace(self, events=tuple(events))

    def describe(self) -> str:
        """One summary line: system, size, schedule shape.

        The schedule is rendered through :func:`summarize_events`, so
        composite primitives read as what they are (``partition_window``,
        ``flash_churn[5]``, ``timeout_storm``) instead of their raw
        event expansion — scenario-cell failure reports quote this line.
        """
        kinds = ",".join(summarize_events(self.events)) or "none"
        return (
            f"{self.system} n={self.size} seed={self.seed} "
            f"events[{len(self.events)}]={kinds} multicasts={self.multicasts}"
        )

    # -- JSON ------------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "size": self.size,
            "seed": self.seed,
            "space_bits": self.space_bits,
            "capacity_range": list(self.capacity_range),
            "uniform_fanout": self.uniform_fanout,
            "fault_window": self.fault_window,
            "multicasts": self.multicasts,
            "propagation_window": self.propagation_window,
            "label": self.label,
            "events": [event.to_json_dict() for event in self.events],
        }

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "FaultPlan":
        return cls(
            system=str(raw["system"]),
            size=int(raw["size"]),
            seed=int(raw["seed"]),
            events=tuple(
                FaultEvent.from_json_dict(event) for event in raw.get("events", [])
            ),
            space_bits=int(raw.get("space_bits", 12)),
            capacity_range=tuple(raw.get("capacity_range", (4, 8))),
            uniform_fanout=int(raw.get("uniform_fanout", 4)),
            fault_window=float(raw.get("fault_window", 30.0)),
            multicasts=int(raw.get("multicasts", 2)),
            propagation_window=float(raw.get("propagation_window", 15.0)),
            label=str(raw.get("label", "")),
        )


def save_plan(plan: FaultPlan, path: str, extra: dict[str, Any] | None = None) -> None:
    """Write a plan (plus optional metadata) as JSON."""
    payload = plan.to_json_dict()
    if extra:
        payload["meta"] = extra
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_plan(path: str) -> FaultPlan:
    """Read a plan written by :func:`save_plan`."""
    with open(path, "r", encoding="utf-8") as handle:
        return FaultPlan.from_json_dict(json.load(handle))


# -- schedule summarization ---------------------------------------------------


def summarize_events(events: Sequence[FaultEvent]) -> list[str]:
    """Name the primitives a flat event schedule expands from.

    The composable helpers below lower to raw events (a partition
    window is a ``partition`` plus a later ``heal``; a timeout storm is
    six ``kind_loss`` edges; flash churn alternates crashes and joins),
    and failure reports that print raw actions are unreadable.  This
    re-coalesces the recognizable shapes — ``partition_window``,
    ``loss_burst``, ``timeout_storm``, ``kind_loss(<kind>)``,
    ``flash_churn[<n>]`` — and leaves anything unmatched (including the
    dangling halves a shrunk plan keeps) as its raw action name.
    """
    ordered = sorted(events, key=lambda e: (e.time, e.action))
    consumed = [False] * len(ordered)

    def claim_later(predicate) -> bool:
        """Consume the first later unconsumed event matching ``predicate``."""
        for j in range(len(ordered)):
            if not consumed[j] and predicate(ordered[j]):
                consumed[j] = True
                return True
        return False

    names: list[str] = []
    for i, event in enumerate(ordered):
        if consumed[i]:
            continue
        consumed[i] = True
        if event.action in ("crash", "join"):
            # flash churn: an unbroken alternating crash/join run of >= 3
            run = 1
            expect = "join" if event.action == "crash" else "crash"
            j = i + 1
            while j < len(ordered) and not consumed[j] and ordered[j].action == expect:
                run += 1
                expect = "join" if expect == "crash" else "crash"
                j += 1
            if run >= 3:
                for k in range(i + 1, j):
                    consumed[k] = True
                names.append(f"flash_churn[{run}]")
            else:
                names.append(event.action)
        elif event.action == "partition":
            matched = claim_later(
                lambda e, t=event.time: e.action == "heal" and e.time >= t
            )
            names.append("partition_window" if matched else "partition")
        elif event.action == "loss" and event.rate > 0:
            matched = claim_later(
                lambda e, t=event.time: e.action == "loss"
                and e.rate == 0
                and e.time >= t
            )
            names.append("loss_burst" if matched else "loss")
        elif event.action == "kind_loss" and event.rate > 0:
            # timeout storm: same-instant onsets covering every
            # maintenance RPC kind, each with a later zero-rate edge
            onsets = [i]
            for j in range(i + 1, len(ordered)):
                if (
                    not consumed[j]
                    and ordered[j].action == "kind_loss"
                    and ordered[j].rate > 0
                    and ordered[j].time == event.time
                ):
                    onsets.append(j)
            kinds = {ordered[j].kind for j in onsets}
            if set(MAINTENANCE_KINDS) <= kinds:
                for j in onsets:
                    consumed[j] = True
                for kind in MAINTENANCE_KINDS:
                    claim_later(
                        lambda e, k=kind, t=event.time: e.action == "kind_loss"
                        and e.kind == k
                        and e.rate == 0
                        and e.time >= t
                    )
                names.append("timeout_storm")
            else:
                claim_later(
                    lambda e, k=event.kind, t=event.time: e.action == "kind_loss"
                    and e.kind == k
                    and e.rate == 0
                    and e.time >= t
                )
                names.append(f"kind_loss({event.kind})")
        else:
            names.append(event.action)
    return names


# -- composable primitives ----------------------------------------------------
#
# Each helper returns the event list one higher-level fault shape
# expands to; the generator composes them, but tests and hand-written
# scenarios use them directly.


def crash_at(time: float, rank: int) -> list[FaultEvent]:
    """Abruptly fail one live member."""
    return [FaultEvent(time, "crash", a=rank)]


def leave_at(time: float, rank: int) -> list[FaultEvent]:
    """Gracefully depart one live member."""
    return [FaultEvent(time, "leave", a=rank)]


def join_at(time: float, capacity: int) -> list[FaultEvent]:
    """Join a brand-new member of ``capacity``."""
    return [FaultEvent(time, "join", capacity=capacity)]


def partition_window(
    time: float, duration: float, rank_a: int, rank_b: int, limit: float
) -> list[FaultEvent]:
    """Sever one live pair, then heal everything ``duration`` later."""
    heal_time = min(time + duration, limit)
    return [
        FaultEvent(time, "partition", a=rank_a, b=rank_b),
        FaultEvent(heal_time, "heal"),
    ]


def loss_burst(time: float, duration: float, rate: float, limit: float) -> list[FaultEvent]:
    """Global iid loss at ``rate`` for ``duration`` seconds."""
    return [
        FaultEvent(time, "loss", rate=rate),
        FaultEvent(min(time + duration, limit), "loss", rate=0.0),
    ]


def timeout_storm(
    time: float, duration: float, rate: float, limit: float
) -> list[FaultEvent]:
    """Starve the maintenance RPCs so requests expire in droves."""
    end = min(time + duration, limit)
    events = [
        FaultEvent(time, "kind_loss", kind=kind, rate=rate)
        for kind in MAINTENANCE_KINDS
    ]
    events.extend(
        FaultEvent(end, "kind_loss", kind=kind, rate=0.0)
        for kind in MAINTENANCE_KINDS
    )
    return events


def message_loss_burst(
    time: float, duration: float, kind: str, rate: float, limit: float
) -> list[FaultEvent]:
    """Per-message-kind loss (e.g. eat ``mc_region`` handoffs only)."""
    return [
        FaultEvent(time, "kind_loss", kind=kind, rate=rate),
        FaultEvent(min(time + duration, limit), "kind_loss", kind=kind, rate=0.0),
    ]


def flash_churn(
    time: float, count: int, spacing: float, capacity: int, limit: float
) -> list[FaultEvent]:
    """A burst of alternating crashes and joins ``spacing`` apart."""
    events: list[FaultEvent] = []
    for index in range(count):
        when = min(time + index * spacing, limit)
        if index % 2 == 0:
            events.append(FaultEvent(when, "crash", a=index * 7 + 1))
        else:
            events.append(FaultEvent(when, "join", capacity=capacity))
    return events


# -- seed-deterministic generation -------------------------------------------


def generate_plan(
    system: str,
    index: int,
    campaign_seed: int = 0,
    size_range: tuple[int, int] = (8, 20),
    max_primitives: int = 4,
) -> FaultPlan:
    """The ``index``-th random plan of one system's campaign.

    Seeding routes through a string (like
    :func:`repro.experiments.common.point_rng`), so the stream is
    stable across processes and platforms: plan ``(system, index,
    seed)`` is the same everywhere, which is what lets the campaign fan
    plans over worker processes and still aggregate deterministic
    results.
    """
    rng = Random(f"faultplan:{campaign_seed}:{system}:{index}")
    size = rng.randint(*size_range)
    window = 30.0
    events: list[FaultEvent] = []
    for _ in range(rng.randint(1, max_primitives)):
        events.extend(_random_primitive(rng, window))
    events.sort(key=lambda event: (event.time, event.action))
    return FaultPlan(
        system=system,
        size=size,
        seed=rng.randrange(1 << 31),
        events=tuple(events),
        fault_window=window,
        label=f"gen:{campaign_seed}:{system}:{index}",
    )


def _random_primitive(rng: Random, window: float) -> Sequence[FaultEvent]:
    """Draw one fault shape within ``[0, window]``."""
    time = rng.uniform(0.0, window * 0.8)
    shape = rng.choice(
        (
            "crash", "crash",  # plain failures dominate real churn
            "leave",
            "join",
            "partition",
            "loss",
            "timeout_storm",
            "message_loss",
            "flash_churn",
        )
    )
    if shape == "crash":
        return crash_at(time, rng.randrange(64))
    if shape == "leave":
        return leave_at(time, rng.randrange(64))
    if shape == "join":
        return join_at(time, rng.randint(4, 8))
    if shape == "partition":
        return partition_window(
            time, rng.uniform(2.0, 10.0), rng.randrange(64), rng.randrange(64), window
        )
    if shape == "loss":
        return loss_burst(time, rng.uniform(2.0, 8.0), rng.uniform(0.05, 0.3), window)
    if shape == "timeout_storm":
        return timeout_storm(
            time, rng.uniform(2.0, 6.0), rng.uniform(0.5, 0.9), window
        )
    if shape == "message_loss":
        kind = rng.choice(("mc_region", "mc_flood", "notify"))
        return message_loss_burst(
            time, rng.uniform(2.0, 8.0), kind, rng.uniform(0.2, 0.6), window
        )
    return flash_churn(time, rng.randint(3, 6), 0.5, rng.randint(4, 8), window)
