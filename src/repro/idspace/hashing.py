"""Member-to-identifier mapping.

The paper maps hosts onto the ring with a hash function "such as
SHA-1" and relies on ``N`` being large enough that collisions are
negligible.  We implement exactly that, but — because a simulation can
not tolerate "negligible" — we also provide deterministic collision
resolution so that any member set maps to distinct identifiers.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.idspace.ring import IdentifierSpace


def hash_to_identifier(name: str, space: IdentifierSpace, salt: int = 0) -> int:
    """Hash an endpoint name (e.g. ``"10.0.0.7:9000"``) onto the ring.

    ``salt`` supports collision resolution: re-hash with an incremented
    salt until the identifier is free.
    """
    material = name.encode("utf-8") if not salt else f"{name}#{salt}".encode("utf-8")
    digest = hashlib.sha1(material).digest()
    return int.from_bytes(digest, "big") % space.size


def assign_identifiers(
    names: Iterable[str], space: IdentifierSpace
) -> dict[str, int]:
    """Map every member name to a distinct identifier.

    Collisions are resolved by salted re-hashing, preserving
    determinism: the same member set always produces the same mapping.

    Raises ``ValueError`` when the group is larger than the identifier
    space (no injective mapping exists).
    """
    names = list(names)
    if len(names) > space.size:
        raise ValueError(
            f"cannot map {len(names)} members into a space of {space.size} identifiers"
        )
    taken: set[int] = set()
    mapping: dict[str, int] = {}
    for name in names:
        if name in mapping:
            raise ValueError(f"duplicate member name: {name!r}")
        salt = 0
        identifier = hash_to_identifier(name, space)
        while identifier in taken:
            salt += 1
            identifier = hash_to_identifier(name, space, salt=salt)
        taken.add(identifier)
        mapping[name] = identifier
    return mapping


def spread_identifiers(count: int, space: IdentifierSpace) -> Sequence[int]:
    """Return ``count`` identifiers spread evenly over the ring.

    Useful for worst/best-case topology experiments where hashing noise
    would obscure the structural effect being measured.
    """
    if count > space.size:
        raise ValueError(
            f"cannot place {count} nodes in a space of {space.size} identifiers"
        )
    if count == 0:
        return []
    step = space.size / count
    positions = sorted({int(i * step) % space.size for i in range(count)})
    # Integer truncation can merge adjacent slots for very dense rings;
    # fill any shortfall with the lowest free identifiers.
    free = 0
    taken = set(positions)
    while len(positions) < count:
        if free not in taken:
            positions.append(free)
            taken.add(free)
        free += 1
    return sorted(positions)
