"""Geographic Layout: locality-preserving identifier assignment (§5.2).

"With Geographic Layout, node identifiers are chosen in a
geographically informed manner.  The main idea is to make
geographically closeby nodes form clusters in the overlay."

Hosts live at coordinates on the unit square (the same torus the
latency model uses).  We linearize the square with a Hilbert
space-filling curve — the classic locality-preserving reduction: two
points close on the plane are, with high probability, close along the
curve — and map curve positions onto the identifier ring.  Ring
neighbors (successor/predecessor, the links multicast uses most) then
tend to be geographically near each other.

The Hilbert transform is implemented from scratch (the standard
rotate-and-accumulate formulation) and property-tested for bijectivity
and locality.
"""

from __future__ import annotations

from repro.idspace.ring import IdentifierSpace


def _rotate(size: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant so the curve stays continuous."""
    if ry == 0:
        if rx == 1:
            x = size - 1 - x
            y = size - 1 - y
        x, y = y, x
    return x, y


def hilbert_index(x: int, y: int, order: int) -> int:
    """Map grid cell ``(x, y)`` to its position along the Hilbert curve.

    The grid is ``2**order`` cells on a side; the result lies in
    ``[0, 4**order)``.  Inverse of :func:`hilbert_point`.
    """
    size = 1 << order
    if not (0 <= x < size and 0 <= y < size):
        raise ValueError(f"({x}, {y}) outside the {size}x{size} grid")
    index = 0
    step = size >> 1
    while step > 0:
        rx = 1 if (x & step) > 0 else 0
        ry = 1 if (y & step) > 0 else 0
        index += step * step * ((3 * rx) ^ ry)
        x, y = _rotate(size, x, y, rx, ry)
        step >>= 1
    return index


def hilbert_point(index: int, order: int) -> tuple[int, int]:
    """Inverse of :func:`hilbert_index`: curve position to grid cell."""
    size = 1 << order
    if not 0 <= index < size * size:
        raise ValueError(f"index {index} outside the curve of {size * size} cells")
    x = y = 0
    t = index
    step = 1
    while step < size:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(step, x, y, rx, ry)
        x += step * rx
        y += step * ry
        t //= 4
        step <<= 1
    return x, y


def geographic_identifiers(
    coordinates: list[tuple[float, float]],
    space: IdentifierSpace,
    order: int = 8,
) -> list[int]:
    """Assign each host an identifier near its Hilbert-curve position.

    Hosts at nearby coordinates receive nearby (often consecutive)
    identifiers, producing the geographic clustering of Section 5.2.
    Curve positions are scaled onto the ring; collisions are resolved
    by probing clockwise, which preserves locality.
    """
    if len(coordinates) > space.size:
        raise ValueError(
            f"cannot place {len(coordinates)} hosts in a space of {space.size}"
        )
    grid = 1 << order
    curve_cells = grid * grid
    taken: set[int] = set()
    out: list[int] = []
    for x, y in coordinates:
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ValueError(f"coordinates must lie in the unit square, got {(x, y)}")
        cell_x = min(grid - 1, int(x * grid))
        cell_y = min(grid - 1, int(y * grid))
        position = hilbert_index(cell_x, cell_y, order)
        ident = (position * space.size) // curve_cells
        while ident in taken:
            ident = space.add(ident, 1)
        taken.add(ident)
        out.append(ident)
    return out
