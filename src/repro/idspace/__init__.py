"""Identifier-space primitives shared by every overlay.

The paper (Section 2) defines a circular identifier space ``[0, N-1]``
with ``N = 2**b``, segments ``(x, y]`` that move clockwise, segment
sizes ``(y - x) mod N`` and ring distances
``min((y - x) mod N, (x - y) mod N)``.  This package implements that
arithmetic exactly, plus the SHA-1 based member-to-identifier mapping.
"""

from repro.idspace.ring import (
    IdentifierSpace,
    ring_distance,
    segment_contains,
    segment_size,
)
from repro.idspace.hashing import hash_to_identifier, assign_identifiers

__all__ = [
    "IdentifierSpace",
    "ring_distance",
    "segment_contains",
    "segment_size",
    "hash_to_identifier",
    "assign_identifiers",
]
