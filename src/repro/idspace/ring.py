"""Modular arithmetic on the circular identifier space.

All functions treat identifiers as points on a clockwise ring of size
``modulus``.  A *segment* ``(x, y]`` starts at ``x + 1``, moves
clockwise and ends at ``y``; its size is ``(y - x) mod modulus``.  An
empty segment has ``x == y`` and size zero.  These definitions follow
Section 2 of the paper verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass


def segment_size(x: int, y: int, modulus: int) -> int:
    """Return the number of identifiers in the segment ``(x, y]``.

    ``segment_size(x, x, m) == 0``: the segment from a point to itself
    is empty (this is the termination condition of the CAM-Chord
    multicast recursion).
    """
    return (y - x) % modulus


def segment_contains(z: int, x: int, y: int, modulus: int) -> bool:
    """Return True when identifier ``z`` lies in the segment ``(x, y]``."""
    offset = (z - x) % modulus
    return 0 < offset <= (y - x) % modulus


def ring_distance(x: int, y: int, modulus: int) -> int:
    """Return ``|x - y|``: the shorter way around the ring."""
    clockwise = (y - x) % modulus
    return min(clockwise, modulus - clockwise)


@dataclass(frozen=True)
class IdentifierSpace:
    """A circular identifier space ``[0, 2**bits - 1]``.

    Provides the ring arithmetic of Section 2 plus the bit-shuffling
    helpers needed by the de Bruijn (Koorde / CAM-Koorde) overlays.
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"identifier space needs >= 1 bit, got {self.bits}")

    @property
    def size(self) -> int:
        """``N = 2**bits``, the number of identifiers."""
        return 1 << self.bits

    def normalize(self, x: int) -> int:
        """Map an arbitrary integer onto the ring."""
        return x % self.size

    def contains(self, x: int) -> bool:
        """Return True when ``x`` is a canonical identifier."""
        return 0 <= x < self.size

    def segment_size(self, x: int, y: int) -> int:
        """Size of the clockwise segment ``(x, y]``."""
        return segment_size(x, y, self.size)

    def in_segment(self, z: int, x: int, y: int) -> bool:
        """True when ``z`` lies in the clockwise segment ``(x, y]``."""
        return segment_contains(z, x, y, self.size)

    def distance(self, x: int, y: int) -> int:
        """Shorter-way-around ring distance ``|x - y|``."""
        return ring_distance(x, y, self.size)

    def add(self, x: int, delta: int) -> int:
        """Clockwise displacement: ``(x + delta) mod N``."""
        return (x + delta) % self.size

    def sub(self, x: int, delta: int) -> int:
        """Counter-clockwise displacement: ``(x - delta) mod N``."""
        return (x - delta) % self.size

    # -- bit helpers used by the de Bruijn overlays -------------------

    def shift_right(self, x: int, count: int) -> int:
        """Drop the ``count`` low-order bits of ``x`` (CAM-Koorde shift)."""
        if count < 0:
            raise ValueError(f"shift count must be >= 0, got {count}")
        return x >> count

    def shift_left_in(self, x: int, digit: int, base_bits: int) -> int:
        """Koorde-style left shift: push ``digit`` into the low bits.

        ``x`` is shifted ``base_bits`` to the left (dropping the bits
        that overflow the identifier width) and ``digit`` becomes the
        new low-order chunk.
        """
        if not 0 <= digit < (1 << base_bits):
            raise ValueError(f"digit {digit} does not fit in {base_bits} bits")
        return ((x << base_bits) | digit) % self.size

    def top_bits(self, x: int, count: int) -> int:
        """Return the ``count`` high-order bits of ``x``."""
        if not 0 <= count <= self.bits:
            raise ValueError(f"count must be in [0, {self.bits}], got {count}")
        return x >> (self.bits - count) if count else 0

    def low_bits(self, x: int, count: int) -> int:
        """Return the ``count`` low-order bits of ``x``."""
        if not 0 <= count <= self.bits:
            raise ValueError(f"count must be in [0, {self.bits}], got {count}")
        return x & ((1 << count) - 1) if count else 0

    def ps_common_bits(self, x: int, k: int) -> int:
        """Number of *ps-common* bits shared by ``x`` and ``k``.

        Definition 1 of the paper: the largest ``l`` such that the
        ``l``-bit *prefix* of ``x`` equals the ``l``-bit *suffix* of
        ``k``.  ``x == k`` iff they share ``bits`` ps-common bits.
        """
        for length in range(self.bits, 0, -1):
            if self.top_bits(x, length) == self.low_bits(k, length):
                return length
        return 0

    def format_id(self, x: int) -> str:
        """Binary rendering used in the paper's figures, e.g. ``100100``."""
        return format(x, f"0{self.bits}b")
