"""CAM-Koorde: the capacity-aware de Bruijn overlay of Section 4.

Node ``x`` has exactly ``c_x`` neighbors, in three groups (all
arithmetic modulo ``N = 2**b``):

* **basic** (mandatory, 4 links): predecessor, successor, and the
  nodes responsible for ``x/2`` and ``2**(b-1) + x/2``;
* **second**: with ``s = floor(log2(c_x - 4))`` and ``t = 2**s`` when
  ``s > 1`` (``t = 0`` otherwise), the nodes responsible for
  ``i * 2**(b-s) + x/2**s`` for ``i in [0..t-1]``;
* **third**: with ``s' = s + 1`` and ``t' = c_x - 4 - t``, the nodes
  responsible for ``i * 2**(b-s') + x/2**s'`` for ``i in [0..t'-1]``.

Unlike Koorde — which shifts *left* so neighbor identifiers differ in
their low-order bits and cluster on the ring — CAM-Koorde shifts
*right* and varies the high-order bits, spreading a node's neighbors
evenly around the ring.  That spread is what makes flooding-based
multicast produce balanced implicit trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.overlay.base import LookupResult, Node, Overlay, RingSnapshot


@dataclass(frozen=True)
class NeighborGroups:
    """The identifier groups of one CAM-Koorde node.

    ``basic_shift`` holds the two de Bruijn identifiers of the basic
    group (``x/2`` and ``2**(b-1) + x/2``); the predecessor/successor
    half of the basic group is membership-relative and therefore not an
    identifier list.
    """

    basic_shift: tuple[int, int]
    second: tuple[int, ...] = field(default=())
    third: tuple[int, ...] = field(default=())

    def all_identifiers(self) -> list[int]:
        """Every de Bruijn identifier, basic group first."""
        return [*self.basic_shift, *self.second, *self.third]


def cam_koorde_neighbor_groups(ident: int, capacity: int, bits: int) -> NeighborGroups:
    """Compute the Section 4.1 neighbor identifier groups of ``ident``.

    Requires ``capacity >= 4`` (the basic group is mandatory).  The
    construction is validated against the paper's Figure 4 example
    (node 36, capacity 10, ``b = 6``) in the test suite.
    """
    if capacity < 4:
        raise ValueError(f"CAM-Koorde requires capacity >= 4, got {capacity}")
    if bits < 2:
        raise ValueError(f"CAM-Koorde needs an identifier space of >= 2 bits")
    size = 1 << bits
    if not 0 <= ident < size:
        raise ValueError(f"identifier {ident} outside space of {size}")
    basic = (ident >> 1, (1 << (bits - 1)) + (ident >> 1))

    remaining = capacity - 4
    if remaining == 0:
        return NeighborGroups(basic_shift=basic)

    shift = remaining.bit_length() - 1  # s = floor(log2(c - 4))
    second_count = (1 << shift) if shift > 1 else 0  # t
    second_shift = min(shift, bits)
    second = tuple(
        (i << (bits - second_shift)) + (ident >> second_shift)
        for i in range(second_count)
    )

    third_count = remaining - second_count  # t'
    third_shift = min(shift + 1, bits)  # s'
    third = tuple(
        ((i << (bits - third_shift)) + (ident >> third_shift)) % size
        for i in range(third_count)
    )
    return NeighborGroups(basic_shift=basic, second=second, third=third)


class CamKoordeOverlay(Overlay):
    """CAM-Koorde over a membership snapshot.

    ``fanout`` is the node's capacity; lookups follow the ps-common-bit
    greedy routine of Section 4.2 with a visited-set safeguard (the
    greedy rule alone is not loop-free on sparse rings, so real
    deployments carry the path in the request — we do the same).
    """

    #: The basic neighbor group needs four links.
    MIN_CAPACITY = 4

    def __init__(self, snapshot: RingSnapshot) -> None:
        super().__init__(snapshot)
        # Validate over the flat capacity column: O(n) machine words,
        # no node materialization on array-backed snapshots.
        capacities = snapshot.capacities
        if min(capacities) < self.MIN_CAPACITY:
            index = next(
                i for i, c in enumerate(capacities) if c < self.MIN_CAPACITY
            )
            raise ValueError(
                f"CAM-Koorde requires capacity >= {self.MIN_CAPACITY}, "
                f"node {snapshot.identifiers[index]} has {capacities[index]}"
            )

    def fanout(self, node: Node) -> int:
        return node.capacity

    def neighbor_groups(self, node: Node) -> NeighborGroups:
        """The node's Section 4.1 identifier groups."""
        return cam_koorde_neighbor_groups(node.ident, node.capacity, self.space.bits)

    def neighbor_identifiers(self, node: Node) -> list[int]:
        return self.neighbor_groups(node).all_identifiers()

    def neighbors(self, node: Node) -> list[Node]:
        """Ring neighbors plus resolved shift-group neighbors, distinct
        (cached: the membership snapshot is immutable)."""
        cached = self._neighbor_cache.get(node.ident)
        if cached is not None:
            return cached
        out: list[Node] = []
        seen: set[int] = set()
        for candidate in (
            self.snapshot.predecessor(node),
            self.snapshot.successor(node),
            *(self.snapshot.resolve(i) for i in self.neighbor_identifiers(node)),
        ):
            if candidate.ident != node.ident and candidate.ident not in seen:
                seen.add(candidate.ident)
                out.append(candidate)
        self._neighbor_cache[node.ident] = out
        return out

    def lookup(self, start: Node, key: int) -> LookupResult:
        """Section 4.2 LOOKUP via an imaginary-identifier chain.

        The routine "forwards the lookup request along a chain of
        neighbors whose identifiers share progressively more ps-common
        bits with k", and — critically for sparse rings — "the request
        is forwarded to y-hat, which in turn calculates its neighbor
        identifier that *should* be the next on the forwarding path":
        the chain is computed over identifiers, Koorde-style, while the
        request physically visits the nodes responsible for them.
        Matching the greedy rule against *resolved node* identifiers
        instead would stall once the match length reaches ~log2(n),
        because resolution perturbs an identifier's low-order bits.

        Each step prepends the next chunk of ``key``'s bits (just above
        the current ps-common run) to the right-shifted imaginary
        identifier; the chunk width is the widest the current node's
        neighbor groups support (third group: ``s + 1`` bits when the
        chunk value is below ``t'``; second group: ``s`` bits; basic
        group: one bit, always available).  After at most ``b``
        injected bits the imaginary identifier *is* ``key`` and the
        responsible node has been reached.
        """
        space = self.space
        snapshot = self.snapshot
        bits = space.bits
        current = start
        hops = 0
        path = [start]
        if len(snapshot) == 1:
            return LookupResult(current, hops, path)

        imaginary, matched = self._best_imaginary_start(current, key)
        while True:
            predecessor = snapshot.predecessor(current)
            if space.in_segment(key, predecessor.ident, current.ident):
                return LookupResult(current, hops, path)
            successor = snapshot.successor(current)
            if space.in_segment(key, current.ident, successor.ident):
                path.append(successor)
                return LookupResult(successor, hops, path)
            if matched >= bits:  # pragma: no cover - defensive
                raise AssertionError(
                    f"imaginary chain exhausted without reaching {key}"
                )
            width, value = self._injection_chunk(current, key, matched)
            imaginary = ((value << (bits - width)) | (imaginary >> width)) % space.size
            matched += width
            nxt = snapshot.resolve(imaginary)
            if nxt.ident != current.ident:
                current = nxt
                hops += 1
                path.append(nxt)

    def _best_imaginary_start(self, node: Node, key: int) -> tuple[int, int]:
        """Pick the identifier in ``(pred(node), node]`` whose prefix
        matches the longest suffix of ``key`` (fewest bits left to
        inject).  Analogue of Koorde's best-imaginary-node trick."""
        space = self.space
        bits = space.bits
        predecessor = self.snapshot.predecessor(node)
        first = space.add(predecessor.ident, 1)
        segment = space.segment_size(predecessor.ident, node.ident)
        for matched in range(bits - 1, 0, -1):
            block_start = space.low_bits(key, matched) << (bits - matched)
            block_size = 1 << (bits - matched)
            # Does [block_start, block_start + block_size) intersect the
            # ring segment [first, first + segment)?
            offset = (block_start - first) % space.size
            if offset < segment:
                return space.normalize(block_start + 0), matched
            if (first - block_start) % space.size < block_size:
                return first, matched
        return node.ident, 0

    def _injection_chunk(self, node: Node, key: int, matched: int) -> tuple[int, int]:
        """Widest bit chunk of ``key`` (just above the ``matched``-bit
        suffix) that ``node``'s neighbor groups can inject.

        Returns ``(width, value)``.  The basic group (identifiers
        ``x/2`` and ``2**(b-1) + x/2``) always supports one bit of
        either value, so a chunk always exists.
        """
        bits = self.space.bits
        remaining = bits - matched
        extra = node.capacity - 4
        if extra >= 1:
            shift = extra.bit_length() - 1  # s = floor(log2(c - 4))
            second_count = (1 << shift) if shift > 1 else 0  # t
            third_width = min(shift + 1, bits)  # s'
            third_count = extra - second_count  # t'
            if third_count > 0 and third_width <= remaining:
                value = (key >> matched) & ((1 << third_width) - 1)
                if value < third_count:
                    return third_width, value
            if second_count > 0 and shift <= remaining:
                return shift, (key >> matched) & ((1 << shift) - 1)
        return 1, (key >> matched) & 1
