"""Membership snapshot and the common overlay interface.

A :class:`RingSnapshot` is an immutable, sorted view of the group at
one instant.  Identifier resolution (``x-hat`` in the paper: the node
responsible for an identifier) is a binary search, so extracting a full
implicit multicast tree over 100,000 members costs O(n log n) — this is
what makes the paper's scale tractable in pure Python.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Iterator, Sequence

from repro import perf
from repro.idspace.ring import IdentifierSpace


@dataclass(frozen=True)
class Node:
    """One group member.

    ``capacity`` is the paper's ``c_x``: the maximum number of direct
    multicast children the node accepts.  ``bandwidth_kbps`` is its
    upload bandwidth ``B_x``; the throughput model divides it evenly
    among the node's tree children.
    """

    ident: int
    capacity: int
    bandwidth_kbps: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.ident < 0:
            raise ValueError(f"identifier must be >= 0, got {self.ident}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.bandwidth_kbps < 0:
            raise ValueError(f"bandwidth must be >= 0, got {self.bandwidth_kbps}")

    def __repr__(self) -> str:  # compact: snapshots hold 1e5 of these
        return f"Node({self.ident}, c={self.capacity})"


class RingSnapshot:
    """An immutable membership view with O(log n) identifier resolution.

    Identifiers are kept in a compact ``array('Q')`` alongside the node
    tuple: the bisect in :meth:`resolve_index` then scans a contiguous
    machine-word buffer instead of chasing ``PyObject`` pointers, which
    is what keeps tree extraction cache-friendly at n = 100,000.

    A snapshot exists in one of two representations:

    * **eager** (the constructor, :meth:`_from_sorted`) — built from
      :class:`Node` objects; the node tuple and the ident->node dict
      exist up front, capacity/bandwidth arrays derive lazily;
    * **array-backed** (:meth:`_from_arrays`) — built from flat
      identifier/capacity/bandwidth arrays (possibly zero-copy views
      over a shared-memory :class:`~repro.membership.MemberBuffer`);
      no per-member objects exist until a consumer actually asks for
      them, which is what keeps peak memory O(n) machine words at
      n = 10^6.  ``node_at`` / ``resolve`` / ``successor`` etc. answer
      by bisect + on-demand :class:`Node` construction.
    """

    def __init__(self, space: IdentifierSpace, nodes: Iterable[Node]) -> None:
        ordered = sorted(nodes, key=lambda node: node.ident)
        for node in ordered:
            if not space.contains(node.ident):
                raise ValueError(
                    f"identifier {node.ident} outside space of {space.size}"
                )
        for prev, here in zip(ordered, ordered[1:]):
            if prev.ident == here.ident:
                raise ValueError(f"duplicate identifier on the ring: {here.ident}")
        if not ordered:
            raise ValueError("a ring snapshot needs at least one node")
        self._init_from_sorted(space, ordered)

    def _init_from_sorted(self, space: IdentifierSpace, ordered: list[Node]) -> None:
        self._space = space
        self._nodes: Sequence[Node] | None = tuple(ordered)
        self._idents: Sequence[int] = array("Q", [node.ident for node in ordered])
        self._by_ident: dict[int, Node] | None = {
            node.ident: node for node in ordered
        }
        self._capacities: Sequence[int] | None = None
        self._bandwidths: Sequence[float] | None = None

    @classmethod
    def _from_sorted(cls, space: IdentifierSpace, ordered: list[Node]) -> "RingSnapshot":
        """Fast constructor for members already sorted and validated.

        Used by :meth:`without` / :meth:`with_nodes`, which derive new
        views from an existing (already checked) snapshot — the churn
        runner calls these once per membership event, so skipping the
        O(n log n) re-sort matters.
        """
        if not ordered:
            raise ValueError("a ring snapshot needs at least one node")
        snapshot = cls.__new__(cls)
        snapshot._init_from_sorted(space, ordered)
        return snapshot

    @classmethod
    def _from_arrays(
        cls,
        space: IdentifierSpace,
        idents: Sequence[int],
        capacities: Sequence[int],
        bandwidths: Sequence[float] | None = None,
    ) -> "RingSnapshot":
        """Array-backed constructor: flat columns, no per-member objects.

        ``idents`` must be strictly increasing and inside ``space``
        (callers — the membership buffer and the streaming builder —
        produce exactly that); capacities/bandwidths are parallel
        columns.  The sequences may be ``array`` instances or zero-copy
        ``memoryview`` casts over shared memory.
        """
        if len(idents) == 0:
            raise ValueError("a ring snapshot needs at least one node")
        if len(capacities) != len(idents):
            raise ValueError("idents and capacities must have equal length")
        if bandwidths is not None and len(bandwidths) != len(idents):
            raise ValueError("idents and bandwidths must have equal length")
        snapshot = cls.__new__(cls)
        snapshot._space = space
        snapshot._nodes = None
        snapshot._idents = idents
        snapshot._by_ident = None
        snapshot._capacities = capacities
        snapshot._bandwidths = bandwidths
        return snapshot

    @property
    def space(self) -> IdentifierSpace:
        """The identifier space this membership lives in."""
        return self._space

    def __len__(self) -> int:
        return len(self._idents)

    def __iter__(self) -> Iterator[Node]:
        if self._nodes is not None:
            return iter(self._nodes)
        # Array-backed: yield transient nodes without materializing the
        # tuple (O(1) extra memory per step, not O(n)).
        return (self.node_for_index(index) for index in range(len(self._idents)))

    def __contains__(self, ident: int) -> bool:
        if self._by_ident is not None:
            return ident in self._by_ident
        return self._exact_index(ident) is not None

    @property
    def nodes(self) -> Sequence[Node]:
        """All members in identifier order.

        On an array-backed snapshot this materializes the full node
        tuple on first access — hot paths (kernel, fused metrics) read
        :attr:`identifiers` / :attr:`capacities` / :attr:`bandwidths`
        instead and never pay for it.
        """
        if self._nodes is None:
            self._nodes = tuple(
                self.node_for_index(index) for index in range(len(self._idents))
            )
        return self._nodes

    @property
    def identifiers(self) -> Sequence[int]:
        """All member identifiers in ring order (compact, read-only)."""
        return self._idents

    @property
    def capacities(self) -> Sequence[int]:
        """All member capacities in ring order (compact, read-only)."""
        if self._capacities is None:
            self._capacities = array("q", [node.capacity for node in self.nodes])
        return self._capacities

    @property
    def bandwidths(self) -> Sequence[float]:
        """All member upload bandwidths (kbps) in ring order.

        Members built without bandwidths report 0.0, exactly like
        ``Node.bandwidth_kbps`` defaults to 0.0.
        """
        if self._bandwidths is None:
            self._bandwidths = array("d", [node.bandwidth_kbps for node in self.nodes])
        return self._bandwidths

    def node_for_index(self, index: int) -> Node:
        """The member at one position of the sorted identifier array.

        Array-backed snapshots construct the :class:`Node` on demand
        (equal by value to what an eager snapshot holds at the same
        position); eager snapshots return the existing object.
        """
        if self._nodes is not None:
            return self._nodes[index]
        bandwidths = self._bandwidths
        return Node(
            ident=self._idents[index],
            capacity=self._capacities[index],
            bandwidth_kbps=bandwidths[index] if bandwidths is not None else 0.0,
        )

    def _exact_index(self, ident: int) -> int | None:
        """Index of the member with exactly ``ident``, or None."""
        idents = self._idents
        position = bisect_left(idents, ident)
        if position < len(idents) and idents[position] == ident:
            return position
        return None

    def node_at(self, ident: int) -> Node:
        """Return the member with exactly this identifier."""
        if self._by_ident is not None:
            try:
                return self._by_ident[ident]
            except KeyError:
                raise KeyError(f"no node with identifier {ident}") from None
        position = self._exact_index(ident)
        if position is None:
            raise KeyError(f"no node with identifier {ident}")
        return self.node_for_index(position)

    def resolve_index(self, ident: int) -> int:
        """Index (into :attr:`nodes`) of the node responsible for ``ident``.

        The index form lets tree extraction and neighbor resolution go
        straight from identifier to node position without a second
        dict hop through :meth:`node_at`.
        """
        perf.COUNTERS.resolves += 1
        position = bisect_left(self._idents, ident % self._space.size)
        if position == len(self._idents):
            return 0
        return position

    def resolve(self, ident: int) -> Node:
        """The paper's ``x-hat``: the node responsible for ``ident``.

        That is the node at ``ident`` itself or, failing that, the first
        node clockwise after it (``successor(ident)``).
        """
        return self.node_for_index(self.resolve_index(ident))

    def successor(self, node: Node) -> Node:
        """The next member strictly clockwise of ``node``."""
        position = bisect_left(self._idents, node.ident)
        return self.node_for_index((position + 1) % len(self._idents))

    def predecessor(self, node: Node) -> Node:
        """The previous member strictly counter-clockwise of ``node``."""
        position = bisect_left(self._idents, node.ident)
        return self.node_for_index((position - 1) % len(self._idents))

    def random_node(self, rng: Random) -> Node:
        """Uniformly random member."""
        return self.node_for_index(rng.randrange(len(self._idents)))

    def nodes_in_segment(self, x: int, y: int, limit: int | None = None) -> list[Node]:
        """Members whose identifiers lie in the clockwise segment
        ``(x, y]``, in clockwise order, optionally capped at ``limit``.

        Used by proximity neighbor selection (Section 5.2): a node may
        pick any member of a neighbor window, so the window contents
        must be enumerable.
        """
        size = self._space.size
        span = (y - x) % size
        if span == 0:
            return []
        start = (x + 1) % size
        end = y % size
        idents = self._idents
        total = len(idents)
        # Both segment boundaries become index ranges via bisect, so the
        # scan touches exactly the members inside (x, y] and — by
        # construction — never walks the ring more than one full wrap,
        # even for pathological spans covering the whole ring minus the
        # probe start.
        low = bisect_left(idents, start)
        high = bisect_right(idents, end)
        if start <= end:
            indices: Iterable[int] = range(low, high)
        else:  # the segment wraps past zero: [start, N) then [0, end]
            indices = (*range(low, total), *range(0, high))
        take = self.node_for_index
        out = [take(index) for index in indices]
        if limit is not None:
            del out[limit:]
        return out

    def without(self, idents: Iterable[int]) -> "RingSnapshot":
        """A new snapshot with the given members removed (churn support).

        Filtering preserves identifier order, so the derived snapshot
        skips the constructor's re-sort and re-validation.
        """
        gone = set(idents)
        survivors = [node for node in self.nodes if node.ident not in gone]
        return RingSnapshot._from_sorted(self._space, survivors)

    def with_nodes(self, nodes: Iterable[Node]) -> "RingSnapshot":
        """A new snapshot with the given members added (churn support).

        The existing members are already sorted, so only the (typically
        few) additions are sorted and the two runs are merged — O(n + m
        log m) instead of re-sorting the whole ring.
        """
        additions = sorted(nodes, key=lambda node: node.ident)
        for node in additions:
            if not self._space.contains(node.ident):
                raise ValueError(
                    f"identifier {node.ident} outside space of {self._space.size}"
                )
        for prev, here in zip(additions, additions[1:]):
            if prev.ident == here.ident:
                raise ValueError(f"duplicate identifier on the ring: {here.ident}")
        merged: list[Node] = []
        existing = self.nodes
        i = j = 0
        while i < len(existing) and j < len(additions):
            if existing[i].ident == additions[j].ident:
                raise ValueError(
                    f"duplicate identifier on the ring: {additions[j].ident}"
                )
            if existing[i].ident < additions[j].ident:
                merged.append(existing[i])
                i += 1
            else:
                merged.append(additions[j])
                j += 1
        merged.extend(existing[i:])
        merged.extend(additions[j:])
        return RingSnapshot._from_sorted(self._space, merged)


@dataclass
class LookupResult:
    """Outcome of one LOOKUP: the responsible node plus the route taken.

    ``hops`` counts overlay forwarding steps (0 when the starting node
    answered locally).  ``path`` includes the starting node and, when
    the lookup succeeded, ends at ``responsible``.
    """

    responsible: Node
    hops: int
    path: list[Node] = field(default_factory=list)


class Overlay(ABC):
    """Common interface of the four overlay networks."""

    def __init__(self, snapshot: RingSnapshot) -> None:
        self._snapshot = snapshot
        # The snapshot is immutable, so resolved neighbor sets are too;
        # flooding visits every node once per tree and experiments build
        # several trees per overlay, making this cache a large win.
        self._neighbor_cache: dict[int, list[Node]] = {}

    @property
    def snapshot(self) -> RingSnapshot:
        """The membership view this overlay is defined over."""
        return self._snapshot

    @property
    def space(self) -> IdentifierSpace:
        """The identifier space."""
        return self._snapshot.space

    @abstractmethod
    def fanout(self, node: Node) -> int:
        """The multicast fan-out budget of ``node``.

        For the capacity-aware overlays this is ``node.capacity``; for
        the capacity-oblivious baselines it is the uniform system-wide
        degree, independent of the node.
        """

    @abstractmethod
    def neighbor_identifiers(self, node: Node) -> list[int]:
        """The *identifiers* ``node`` keeps links toward (with duplicates
        as the construction produces them)."""

    def neighbors(self, node: Node) -> list[Node]:
        """Distinct resolved neighbor nodes, excluding ``node`` itself
        (cached: the membership snapshot is immutable)."""
        cached = self._neighbor_cache.get(node.ident)
        if cached is not None:
            return cached
        snapshot = self._snapshot
        members = snapshot.nodes
        resolve_index = snapshot.resolve_index
        seen: set[int] = set()
        out: list[Node] = []
        for ident in self.neighbor_identifiers(node):
            resolved = members[resolve_index(ident)]
            if resolved.ident == node.ident or resolved.ident in seen:
                continue
            seen.add(resolved.ident)
            out.append(resolved)
        self._neighbor_cache[node.ident] = out
        return out

    @abstractmethod
    def lookup(self, start: Node, key: int) -> LookupResult:
        """Find the node responsible for identifier ``key``."""

    def check_lookup_invariants(self, result: LookupResult, key: int) -> None:
        """Assert that a lookup answer is actually responsible for ``key``.

        Responsibility means ``key`` lies in ``(predecessor(v), v]``.
        Used by tests and by the paranoid mode of the experiment runner.
        """
        node = result.responsible
        predecessor = self._snapshot.predecessor(node)
        if len(self._snapshot) == 1:
            return
        if not self.space.in_segment(key, predecessor.ident, node.ident):
            raise AssertionError(
                f"lookup({key}) returned {node}, responsible segment is "
                f"({predecessor.ident}, {node.ident}]"
            )


def build_snapshot(
    space: IdentifierSpace,
    capacities: Sequence[int],
    bandwidths: Sequence[float] | None = None,
    rng: Random | None = None,
) -> RingSnapshot:
    """Place ``len(capacities)`` nodes at random distinct identifiers.

    The identifier draw models the SHA-1 mapping of Section 2 (uniform
    without collisions).  ``rng`` defaults to a fixed seed so snapshots
    are reproducible unless the caller opts out.
    """
    rng = rng if rng is not None else Random(0)
    count = len(capacities)
    if bandwidths is not None and len(bandwidths) != count:
        raise ValueError("capacities and bandwidths must have equal length")
    if count > space.size:
        raise ValueError(
            f"cannot place {count} nodes in a space of {space.size} identifiers"
        )
    idents = sample_identifiers(count, space.size, rng)
    nodes = [
        Node(
            ident=ident,
            capacity=capacities[index],
            bandwidth_kbps=bandwidths[index] if bandwidths is not None else 0.0,
        )
        for index, ident in enumerate(idents)
    ]
    return RingSnapshot(space, nodes)


def build_array_snapshot(
    space: IdentifierSpace,
    capacities: Sequence[int],
    bandwidths: Sequence[float] | None = None,
    rng: Random | None = None,
) -> RingSnapshot:
    """:func:`build_snapshot` without ever materializing ``Node`` objects.

    Draws the same identifiers from ``rng`` (identical stream
    consumption, identical member set), but stores the membership as
    three flat columns — the representation the million-member tier
    needs, where 10^6 frozen dataclass instances plus an ident dict
    would dwarf the 24 MB the arrays take.
    """
    rng = rng if rng is not None else Random(0)
    count = len(capacities)
    if bandwidths is not None and len(bandwidths) != count:
        raise ValueError("capacities and bandwidths must have equal length")
    if count > space.size:
        raise ValueError(
            f"cannot place {count} nodes in a space of {space.size} identifiers"
        )
    drawn = sample_identifiers(count, space.size, rng)
    order = sorted(range(count), key=drawn.__getitem__)
    idents = array("Q", [drawn[i] for i in order])
    capacity_column = array("q", [capacities[i] for i in order])
    bandwidth_column = (
        array("d", [bandwidths[i] for i in order]) if bandwidths is not None else None
    )
    lowest = min(capacity_column)
    if lowest < 1:
        raise ValueError(f"capacity must be >= 1, got {lowest}")
    return RingSnapshot._from_arrays(space, idents, capacity_column, bandwidth_column)


def sample_identifiers(count: int, size: int, rng: Random) -> list[int]:
    """Draw ``count`` distinct identifiers uniformly from ``[0, size)``."""
    if count * 4 >= size:
        # Dense ring: sampling without replacement via shuffle semantics.
        return rng.sample(range(size), count)
    chosen: list[int] = []
    taken: set[int] = set()
    while len(chosen) < count:
        ident = rng.randrange(size)
        if ident not in taken:
            taken.add(ident)
            insort(chosen, ident)
    return chosen
