"""Plain Chord, generalized to base ``k`` — the capacity-oblivious baseline.

Classic Chord (base 2) keeps fingers at ``x + 2**i``.  The base-``k``
generalization keeps fingers at ``x + j * k**i`` for ``j in [1..k-1]``,
giving every node the *same* fanout budget regardless of its upload
bandwidth — exactly the property the paper's evaluation (Figure 6)
holds against it.  The arithmetic is shared with CAM-Chord: Chord is
CAM-Chord with every capacity pinned to ``k``.
"""

from __future__ import annotations

from repro.overlay.base import LookupResult, Node, Overlay, RingSnapshot
from repro.overlay.cam_chord import level_and_sequence


class ChordOverlay(Overlay):
    """Base-``k`` Chord over a membership snapshot.

    ``base=2`` is the classic system of Stoica et al.; larger bases are
    used by the Figure 6 sweep to vary the baseline's average fanout.
    Node capacities and bandwidths are deliberately ignored when
    building the finger table: that is the point of the baseline.
    """

    def __init__(self, snapshot: RingSnapshot, base: int = 2) -> None:
        super().__init__(snapshot)
        if base < 2:
            raise ValueError(f"Chord base must be >= 2, got {base}")
        self._base = base

    @property
    def base(self) -> int:
        """The finger-table base ``k`` (uniform across all nodes)."""
        return self._base

    def fanout(self, node: Node) -> int:
        return self._base

    def neighbor_identifiers(self, node: Node) -> list[int]:
        """All fingers ``x + j * base**i`` within one turn of the ring."""
        size = self.space.size
        out: list[int] = []
        power = 1
        while power < size:
            for sequence in range(1, self._base):
                offset = sequence * power
                if offset >= size:
                    break
                out.append(self.space.add(node.ident, offset))
            power *= self._base
        return out

    def finger_identifier(self, node: Node, level: int, sequence: int) -> int:
        """The finger identifier ``(x + sequence * base**level) mod N``."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        if not 0 <= sequence < self._base:
            raise ValueError(f"sequence must be in [0, {self._base}), got {sequence}")
        return self.space.add(node.ident, sequence * self._base**level)

    def lookup(self, start: Node, key: int) -> LookupResult:
        """Greedy closest-preceding-finger routing (O(log_k n) hops)."""
        space = self.space
        snapshot = self.snapshot
        current = start
        hops = 0
        path = [start]
        while True:
            if len(snapshot) == 1:
                return LookupResult(current, hops, path)
            predecessor = snapshot.predecessor(current)
            if space.in_segment(key, predecessor.ident, current.ident):
                return LookupResult(current, hops, path)
            successor = snapshot.successor(current)
            if space.in_segment(key, current.ident, successor.ident):
                path.append(successor)
                return LookupResult(successor, hops, path)
            distance = space.segment_size(current.ident, key)
            level, sequence = level_and_sequence(distance, self._base)
            ident = self.finger_identifier(current, level, sequence)
            finger = snapshot.resolve(ident)
            if space.in_segment(key, current.ident, finger.ident):
                path.append(finger)
                return LookupResult(finger, hops, path)
            if finger.ident == current.ident:
                raise AssertionError(
                    f"lookup stalled at node {current.ident} for key {key}"
                )
            current = finger
            hops += 1
            path.append(finger)
