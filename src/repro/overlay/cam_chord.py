"""CAM-Chord: the capacity-aware Chord extension of Section 3.

Node ``x`` with capacity ``c_x`` keeps neighbors responsible for the
identifiers ``(x + j * c_x**i) mod N`` for ``j in [1..c_x-1]`` and
``i in [0..ceil(log N / log c_x) - 1]``.  ``i`` is the *level* and
``j`` the *sequence number*.  With ``c_x == 2`` this degenerates to the
classic Chord finger table, which is why the plain-Chord baseline
shares this module's arithmetic.
"""

from __future__ import annotations

from repro.overlay.base import LookupResult, Node, Overlay, RingSnapshot


def level_and_sequence(distance: int, capacity: int) -> tuple[int, int]:
    """Equations (1)-(2): level ``i`` and sequence ``j`` of an identifier.

    For an identifier ``k`` at clockwise distance ``distance = (k - x)
    mod N >= 1`` from node ``x`` with capacity ``capacity >= 2``:

    * ``i = floor(log(distance) / log(capacity))``
    * ``j = floor(distance / capacity**i)``

    so that ``x + j * capacity**i`` is the neighbor identifier of ``x``
    counter-clockwise closest to ``k``.  Computed with exact integer
    arithmetic — float logs misplace identifiers near level boundaries.
    """
    if distance < 1:
        raise ValueError(f"distance must be >= 1, got {distance}")
    if capacity < 2:
        raise ValueError(f"capacity must be >= 2, got {capacity}")
    level = 0
    power = 1  # capacity ** level
    while power * capacity <= distance:
        power *= capacity
        level += 1
    return level, distance // power


def slot_identifiers(ident: int, capacity: int, bits: int) -> list[tuple[int, int, int]]:
    """All neighbor slots of a node: ``(level, sequence, identifier)``.

    Slots enumerate ``(x + j * c**i) mod N`` for ``j in [1..c-1]`` and
    every level whose offsets stay within one turn of the ring.  Used
    by both the snapshot overlay and the live protocol peers (whose
    neighbor *tables* are keyed by these slots).
    """
    if capacity < 2:
        raise ValueError(f"capacity must be >= 2, got {capacity}")
    size = 1 << bits
    out: list[tuple[int, int, int]] = []
    power = 1
    level = 0
    while power < size:
        for sequence in range(1, capacity):
            offset = sequence * power
            if offset >= size:
                break
            out.append((level, sequence, (ident + offset) % size))
        power *= capacity
        level += 1
    return out


def neighbor_levels(capacity: int, space_bits: int) -> int:
    """Number of neighbor levels: the smallest ``L`` with ``c**L >= N``."""
    if capacity < 2:
        raise ValueError(f"capacity must be >= 2, got {capacity}")
    size = 1 << space_bits
    levels = 0
    power = 1
    while power < size:
        power *= capacity
        levels += 1
    return levels


class CamChordOverlay(Overlay):
    """CAM-Chord over a membership snapshot.

    ``fanout`` is the node's own capacity; lookups follow the greedy
    closest-preceding-neighbor rule of Section 3.2 and terminate in
    ``O(log n / log c)`` hops (Theorem 2).
    """

    #: Smallest capacity for which the neighbor table covers the ring.
    MIN_CAPACITY = 2

    def __init__(self, snapshot: RingSnapshot) -> None:
        super().__init__(snapshot)
        # Validate over the flat capacity column: O(n) machine words,
        # no node materialization on array-backed snapshots.
        capacities = snapshot.capacities
        if min(capacities) < self.MIN_CAPACITY:
            index = next(
                i for i, c in enumerate(capacities) if c < self.MIN_CAPACITY
            )
            raise ValueError(
                f"CAM-Chord requires capacity >= {self.MIN_CAPACITY}, "
                f"node {snapshot.identifiers[index]} has {capacities[index]}"
            )

    def fanout(self, node: Node) -> int:
        return node.capacity

    def neighbor_identifiers(self, node: Node) -> list[int]:
        """All ``x + j * c**i`` identifiers within one turn of the ring."""
        return [
            identifier
            for _, _, identifier in slot_identifiers(
                node.ident, node.capacity, self.space.bits
            )
        ]

    def neighbor_identifier(self, node: Node, level: int, sequence: int) -> int:
        """The identifier ``x_{i,j} = (x + j * c_x**i) mod N``."""
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        if not 0 <= sequence < node.capacity:
            raise ValueError(
                f"sequence must be in [0, {node.capacity}), got {sequence}"
            )
        return self.space.add(node.ident, sequence * node.capacity**level)

    def lookup(self, start: Node, key: int) -> LookupResult:
        """Section 3.2 LOOKUP: greedy descent through neighbor levels."""
        space = self.space
        snapshot = self.snapshot
        current = start
        hops = 0
        path = [start]
        while True:
            if len(snapshot) == 1:
                return LookupResult(current, hops, path)
            predecessor = snapshot.predecessor(current)
            if space.in_segment(key, predecessor.ident, current.ident):
                # ``current`` itself is responsible (k in (pred(x), x]).
                return LookupResult(current, hops, path)
            successor = snapshot.successor(current)
            if space.in_segment(key, current.ident, successor.ident):
                path.append(successor)
                return LookupResult(successor, hops, path)
            distance = space.segment_size(current.ident, key)
            level, sequence = level_and_sequence(distance, current.capacity)
            ident = self.neighbor_identifier(current, level, sequence)
            neighbor = snapshot.resolve(ident)
            if space.in_segment(key, current.ident, neighbor.ident):
                # No member between the neighbor identifier and ``key``:
                # the resolved neighbor is responsible for ``key``.
                path.append(neighbor)
                return LookupResult(neighbor, hops, path)
            if neighbor.ident == current.ident:
                raise AssertionError(
                    f"lookup stalled at node {current.ident} for key {key}"
                )
            current = neighbor
            hops += 1
            path.append(neighbor)
