"""Plain Koorde, generalized to de Bruijn degree ``k`` — the second
capacity-oblivious baseline.

Koorde (Kaashoek & Karger) embeds a de Bruijn graph in the Chord ring:
node ``x`` keeps links toward the identifiers ``(k * x + j) mod N`` for
``j in [0..k-1]`` — the identifier shifted one digit (base ``k``) to
the *left* with the lowest digit replaced.  The replaced digit is the
low-order one, so a node's de Bruijn neighbors differ only in their
last ``log2 k`` bits: they cluster on the ring and often resolve to the
same physical node.  Section 4 of the paper singles out exactly this
clustering as the reason Koorde floods poorly, and fixes it in
CAM-Koorde by shifting *right* instead.
"""

from __future__ import annotations

from repro.overlay.base import LookupResult, Node, Overlay, RingSnapshot


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


class KoordeOverlay(Overlay):
    """Degree-``k`` Koorde over a membership snapshot.

    Every node keeps its ring predecessor/successor plus ``k`` de
    Bruijn pointers, independent of its bandwidth.  Lookups route by
    injecting the digits of the key into an *imaginary* identifier, as
    in the original paper; when ``k`` is a power of two the imaginary
    start is optimized inside the node's responsible segment, giving
    the O(log_k n) w.h.p. hop count of Koorde's Theorem 11.
    """

    def __init__(self, snapshot: RingSnapshot, degree: int = 2) -> None:
        super().__init__(snapshot)
        if degree < 2:
            raise ValueError(f"Koorde degree must be >= 2, got {degree}")
        self._degree = degree
        self._digit_bits = degree.bit_length() - 1 if _is_power_of_two(degree) else 0

    @property
    def degree(self) -> int:
        """The de Bruijn degree ``k`` (uniform across all nodes)."""
        return self._degree

    def fanout(self, node: Node) -> int:
        # pred + succ + k de Bruijn pointers is the link budget; the
        # multicast fanout comparable to CAM capacities is that total.
        return self._degree + 2

    def neighbor_identifiers(self, node: Node) -> list[int]:
        """The de Bruijn identifiers ``(k * x + j) mod N``."""
        k = self._degree
        return [self.space.normalize(k * node.ident + j) for j in range(k)]

    def neighbors(self, node: Node) -> list[Node]:
        """Ring neighbors plus the degree-``k`` de Bruijn pointers.

        Koorde's degree-``k`` construction keeps pointers to the ``k``
        *consecutive members* beginning at the node responsible for
        ``k * x`` (the ``k`` raw identifiers ``k*x + j`` are adjacent
        and usually collapse onto one member on a sparse ring).  The
        pointers are therefore ``k`` distinct nodes — but clustered
        together on the ring, which is exactly the property Section 4
        of the paper criticizes and CAM-Koorde's high-order-bit shift
        repairs.
        """
        cached = self._neighbor_cache.get(node.ident)
        if cached is not None:
            return cached
        snapshot = self.snapshot
        out: list[Node] = []
        seen: set[int] = set()

        def take(candidate: Node) -> None:
            if candidate.ident != node.ident and candidate.ident not in seen:
                seen.add(candidate.ident)
                out.append(candidate)

        take(snapshot.predecessor(node))
        take(snapshot.successor(node))
        cursor = snapshot.resolve(self.space.normalize(self._degree * node.ident))
        for _ in range(self._degree):
            take(cursor)
            cursor = snapshot.successor(cursor)
        self._neighbor_cache[node.ident] = out
        return out

    # -- routing ------------------------------------------------------

    def _digit_count(self) -> int:
        """Smallest ``L`` with ``k**L >= N``: digits needed to spell a key."""
        k = self._degree
        count = 0
        power = 1
        while power < self.space.size:
            power *= k
            count += 1
        return count

    def _best_imaginary_start(self, node: Node, key: int) -> tuple[int, int]:
        """Choose the imaginary identifier inside ``node``'s segment that
        minimizes the number of digit injections (power-of-two degree).

        Returns ``(imaginary, injections)``.  An identifier ``z`` whose
        low ``b - j*g`` bits equal the top ``b - j*g`` bits of ``key``
        reaches ``key`` after ``j`` injections; the responsible segment
        ``(pred, node]`` has ~``N/n`` identifiers, so some ``j`` around
        ``log_k n`` always admits such a ``z``.
        """
        bits = self.space.bits
        digit_bits = self._digit_bits
        predecessor = self.snapshot.predecessor(node)
        segment = self.space.segment_size(predecessor.ident, node.ident)
        first = self.space.add(predecessor.ident, 1)
        total_digits = self._digit_count()
        for injections in range(total_digits + 1):
            kept_bits = bits - injections * digit_bits
            if kept_bits <= 0:
                return node.ident, total_digits
            step = 1 << kept_bits
            residue = key >> (bits - kept_bits)
            offset = (residue - first) % step
            if offset < segment:
                return self.space.add(first, offset), injections
        return node.ident, total_digits

    def lookup(self, start: Node, key: int) -> LookupResult:
        """De Bruijn digit-injection routing.

        Each hop corresponds to following one de Bruijn pointer; the
        successor walks that a live deployment interleaves are folded
        into the snapshot's ``resolve`` (they do not change the
        asymptotic hop count and the paper does not plot Koorde lookup
        hops).
        """
        space = self.space
        snapshot = self.snapshot
        k = self._degree
        current = start
        hops = 0
        path = [start]
        if len(snapshot) == 1:
            return LookupResult(current, hops, path)
        predecessor = snapshot.predecessor(current)
        if space.in_segment(key, predecessor.ident, current.ident):
            return LookupResult(current, hops, path)
        if not self._digit_bits:
            # Digit shifting is a permutation of [0, 2**b) only when the
            # degree is a power of two; other degrees can still build
            # and flood the overlay but cannot route by digit injection.
            raise ValueError(
                f"Koorde lookup requires a power-of-two degree, got {k}"
            )
        imaginary, injections = self._best_imaginary_start(current, key)
        digit_bits = self._digit_bits
        digits = [
            (key >> (digit_bits * (injections - 1 - index))) & (k - 1)
            for index in range(injections)
        ]
        for digit in digits:
            imaginary = space.normalize(imaginary * k + digit)
            nxt = snapshot.resolve(imaginary)
            if nxt.ident != current.ident:
                current = nxt
                hops += 1
                path.append(nxt)
        # After all injections the imaginary identifier equals ``key``,
        # so ``resolve`` has delivered us to the responsible node.
        if not space.in_segment(
            key, snapshot.predecessor(current).ident, current.ident
        ):
            raise AssertionError(f"Koorde lookup failed to converge on {key}")
        return LookupResult(current, hops, path)
