"""Structured P2P overlays: Chord, Koorde, CAM-Chord, CAM-Koorde.

Each overlay implements neighbor-table arithmetic and a LOOKUP routine
over a :class:`~repro.overlay.base.RingSnapshot` — an immutable view of
the current membership.  The snapshot form is what the paper's own
simulation measures (path lengths, child counts, bottleneck bandwidth
are structural properties); the live, message-passing protocols that
*maintain* these tables under churn live in :mod:`repro.protocol`.
"""

from repro.overlay.base import LookupResult, Node, Overlay, RingSnapshot
from repro.overlay.chord import ChordOverlay
from repro.overlay.koorde import KoordeOverlay
from repro.overlay.cam_chord import CamChordOverlay, level_and_sequence
from repro.overlay.cam_koorde import CamKoordeOverlay, cam_koorde_neighbor_groups

__all__ = [
    "LookupResult",
    "Node",
    "Overlay",
    "RingSnapshot",
    "ChordOverlay",
    "KoordeOverlay",
    "CamChordOverlay",
    "CamKoordeOverlay",
    "level_and_sequence",
    "cam_koorde_neighbor_groups",
]
