"""Structural statistics of one implicit multicast tree.

Kernel-built trees (:class:`~repro.multicast.kernel.FlatTree`) are
summarized in one fused sweep over the flat arrays; object trees take
the dict-walking path.  Both produce bit-identical statistics (the
accumulations are integer until the final divisions)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro import perf
from repro.multicast.delivery import MulticastResult
from repro.multicast.kernel import FlatTree


@dataclass(frozen=True)
class TreeStats:
    """Summary of one implicit multicast tree.

    ``average_path_length`` / ``max_path_length`` are the paper's
    latency metrics (overlay hops from the source).  ``histogram`` is
    the Figure 9/10 statistic: how many nodes were reached in exactly
    ``h`` hops.  ``average_children`` is taken over internal (non-leaf)
    nodes, matching the Figure 6 x-axis.
    """

    receivers: int
    average_path_length: float
    max_path_length: int
    histogram: dict[int, int]
    internal_count: int
    leaf_count: int
    average_children: float
    max_children: int

    def coverage_complete(self, member_count: int) -> bool:
        """True when every member received the message."""
        return self.receivers == member_count


def summarize_tree(result: MulticastResult | FlatTree) -> TreeStats:
    """Compute :class:`TreeStats` from a delivery record."""
    if isinstance(result, FlatTree):
        return _summarize_flat(result)
    children = result.children_counts()
    internal = [count for count in children.values() if count > 0]
    leaves = len(children) - len(internal)
    histogram = Counter(result.depth.values())
    total_children = sum(internal)
    return TreeStats(
        receivers=result.receiver_count,
        average_path_length=result.average_path_length(),
        max_path_length=result.max_path_length(),
        histogram=dict(sorted(histogram.items())),
        internal_count=len(internal),
        leaf_count=leaves,
        average_children=total_children / len(internal) if internal else 0.0,
        max_children=max(internal) if internal else 0,
    )


def _summarize_flat(tree: FlatTree) -> TreeStats:
    """All eight statistics in one pass over the kernel arrays."""
    perf.COUNTERS.array_passes += 1
    depths = tree.depth_array
    counts = tree.child_count
    histogram: Counter[int] = Counter()
    receivers = 0
    depth_total = 0
    depth_max = 0
    internal = 0
    children_total = 0
    children_max = 0
    for index in tree.order:
        receivers += 1
        depth = depths[index]
        depth_total += depth
        if depth > depth_max:
            depth_max = depth
        histogram[depth] += 1
        count = counts[index]
        if count > 0:
            internal += 1
            children_total += count
            if count > children_max:
                children_max = count
    others = receivers - 1
    return TreeStats(
        receivers=receivers,
        average_path_length=depth_total / others if others else 0.0,
        max_path_length=depth_max,
        histogram=dict(sorted(histogram.items())),
        internal_count=internal,
        leaf_count=receivers - internal,
        average_children=children_total / internal if internal else 0.0,
        max_children=children_max,
    )
