"""Structural statistics of one implicit multicast tree."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.multicast.delivery import MulticastResult


@dataclass(frozen=True)
class TreeStats:
    """Summary of one implicit multicast tree.

    ``average_path_length`` / ``max_path_length`` are the paper's
    latency metrics (overlay hops from the source).  ``histogram`` is
    the Figure 9/10 statistic: how many nodes were reached in exactly
    ``h`` hops.  ``average_children`` is taken over internal (non-leaf)
    nodes, matching the Figure 6 x-axis.
    """

    receivers: int
    average_path_length: float
    max_path_length: int
    histogram: dict[int, int]
    internal_count: int
    leaf_count: int
    average_children: float
    max_children: int

    def coverage_complete(self, member_count: int) -> bool:
        """True when every member received the message."""
        return self.receivers == member_count


def summarize_tree(result: MulticastResult) -> TreeStats:
    """Compute :class:`TreeStats` from a delivery record."""
    children = result.children_counts()
    internal = [count for count in children.values() if count > 0]
    leaves = len(children) - len(internal)
    histogram = Counter(result.depth.values())
    total_children = sum(internal)
    return TreeStats(
        receivers=result.receiver_count,
        average_path_length=result.average_path_length(),
        max_path_length=result.max_path_length(),
        histogram=dict(sorted(histogram.items())),
        internal_count=len(internal),
        leaf_count=leaves,
        average_children=total_children / len(internal) if internal else 0.0,
        max_children=max(internal) if internal else 0,
    )
