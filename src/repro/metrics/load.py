"""Forwarding-load accounting: the Section 5.1 argument, quantified.

The paper contrasts two architectures for any-source multicast:

* **tree building** — one shared tree per group on a global overlay.
  Internal nodes forward *every* message (load ``O(k M)`` for fanout
  ``k`` and total traffic ``M``); leaves forward nothing.  With
  ``k > 2`` the majority of nodes are leaves, so the load is
  concentrated on a minority.
* **flooding** (the CAM approach) — one *implicit* tree per source.
  Each node is internal in some trees and a leaf in others, so with
  well-distributed sources every node forwards ``O(M)``.

This module measures both models on concrete trees so the claim can be
checked quantitatively (experiment Ext B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro import perf
from repro.multicast.delivery import MulticastResult
from repro.multicast.kernel import FlatTree


@dataclass(frozen=True)
class ForwardingLoad:
    """Distribution of per-node forwarded traffic for one workload.

    ``per_node`` maps member identifier to forwarded kilobits.  The
    summary statistics quantify how evenly the work is spread:
    ``coefficient_of_variation`` (std/mean) and ``max_over_mean`` are
    small when every member carries a similar share.
    """

    per_node: Mapping[int, float]

    @property
    def total(self) -> float:
        """Total forwarded traffic across the group."""
        return sum(self.per_node.values())

    @property
    def mean(self) -> float:
        """Mean per-node forwarded traffic."""
        if not self.per_node:
            return 0.0
        return self.total / len(self.per_node)

    @property
    def idle_fraction(self) -> float:
        """Fraction of members that forwarded nothing at all."""
        if not self.per_node:
            return 0.0
        idle = sum(1 for load in self.per_node.values() if load == 0)
        return idle / len(self.per_node)

    @property
    def max_over_mean(self) -> float:
        """Peak-to-average load ratio (1.0 is perfectly even)."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return max(self.per_node.values()) / mean

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation divided by the mean."""
        mean = self.mean
        if mean == 0 or not self.per_node:
            return 0.0
        variance = sum((load - mean) ** 2 for load in self.per_node.values()) / len(
            self.per_node
        )
        return math.sqrt(variance) / mean


def flooding_load(
    results: Iterable[MulticastResult], message_kbits: float = 1.0
) -> ForwardingLoad:
    """Aggregate forwarding load when every source uses its own implicit
    tree (the CAM / flooding architecture).

    Each node forwards ``children * message_kbits`` per message it
    relays.  Nodes that appear in any tree are accounted even when they
    forwarded nothing, so :attr:`ForwardingLoad.idle_fraction` is
    meaningful.
    """
    per_node: dict[int, float] = {}
    get = per_node.get
    for result in results:
        if isinstance(result, FlatTree):
            # Fused: accumulate straight off the kernel arrays, in
            # delivery order (same dict insertion order as the
            # children_counts() path).
            perf.COUNTERS.array_passes += 1
            idents = result.snapshot.identifiers
            counts = result.child_count
            for index in result.order:
                ident = idents[index]
                per_node[ident] = get(ident, 0.0) + counts[index] * message_kbits
            continue
        for ident, count in result.children_counts().items():
            per_node[ident] = per_node.get(ident, 0.0) + count * message_kbits
    return ForwardingLoad(per_node=per_node)


def single_tree_load(
    shared_tree: MulticastResult,
    message_count: int,
    message_kbits: float = 1.0,
) -> ForwardingLoad:
    """Forwarding load when ``message_count`` messages (from any
    sources) all travel over one shared tree rooted at the tree's
    source — the tree-building architecture of Section 5.1.

    Every internal node relays every message; the root-ward trip of a
    non-root sender is ignored (it only adds O(depth) unicast hops and
    does not change the asymmetric internal-vs-leaf picture).
    """
    if message_count < 0:
        raise ValueError(f"message_count must be >= 0, got {message_count}")
    per_node = {
        ident: count * message_count * message_kbits
        for ident, count in shared_tree.children_counts().items()
    }
    return ForwardingLoad(per_node=per_node)
