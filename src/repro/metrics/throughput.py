"""The bottleneck throughput model of Section 6.1.

"Due to limited buffer space at each node, the sustainable multicast
throughput is decided by the link with the least allocated bandwidth in
the multicast tree."  A node with upload bandwidth ``B_x`` and ``d_x``
children in the tree allocates ``B_x / d_x`` to each child link, so

    throughput = min over internal nodes x of  B_x / d_x.

For the CAM systems ``d_x <= c_x = floor(B_x / p)`` guarantees every
allocation is at least ``p``: throughput never drops below the
configured per-link rate no matter how the tree turned out.  For the
capacity-oblivious baselines a low-bandwidth node can end up with a
large fanout and throttle the entire session — the effect Figure 6
quantifies.
"""

from __future__ import annotations

from repro import perf
from repro.multicast.delivery import MulticastResult
from repro.multicast.kernel import FlatTree
from repro.overlay.base import RingSnapshot


def allocated_link_bandwidths(
    result: MulticastResult | FlatTree, snapshot: RingSnapshot
) -> dict[int, float]:
    """Per-internal-node allocated bandwidth ``B_x / d_x`` in kbps."""
    allocations: dict[int, float] = {}
    if isinstance(result, FlatTree):
        # Fused: one sweep over the kernel arrays, bandwidths read from
        # the snapshot's flat column (no ident->Node dict hop, no node
        # tuple materialization on array-backed snapshots).
        perf.COUNTERS.array_passes += 1
        counts = result.child_count
        idents = result.snapshot.identifiers
        bandwidths = result.snapshot.bandwidths
        for index in result.order:
            count = counts[index]
            if count == 0:
                continue
            bandwidth = bandwidths[index]
            if bandwidth <= 0:
                raise ValueError(
                    f"node {idents[index]} has no bandwidth assigned; build the "
                    "snapshot with per-node bandwidths to use the throughput "
                    "model"
                )
            allocations[idents[index]] = bandwidth / count
        return allocations
    for ident, count in result.children_counts().items():
        if count == 0:
            continue
        node = snapshot.node_at(ident)
        if node.bandwidth_kbps <= 0:
            raise ValueError(
                f"node {ident} has no bandwidth assigned; build the snapshot "
                "with per-node bandwidths to use the throughput model"
            )
        allocations[ident] = node.bandwidth_kbps / count
    return allocations


def sustainable_throughput(
    result: MulticastResult | FlatTree, snapshot: RingSnapshot
) -> float:
    """The session's sustainable data rate in kbps (single-node groups
    have nothing to forward, reported as the source's full bandwidth)."""
    if isinstance(result, FlatTree):
        # Fused: running min, no allocation dict at all.  ``min`` over
        # the same set of quotients is order-insensitive, so this is
        # bit-identical to the dict-building path.
        perf.COUNTERS.array_passes += 1
        counts = result.child_count
        idents = result.snapshot.identifiers
        bandwidths = result.snapshot.bandwidths
        bottleneck = -1.0
        for index in result.order:
            count = counts[index]
            if count == 0:
                continue
            bandwidth = bandwidths[index]
            if bandwidth <= 0:
                raise ValueError(
                    f"node {idents[index]} has no bandwidth assigned; build the "
                    "snapshot with per-node bandwidths to use the throughput "
                    "model"
                )
            allocated = bandwidth / count
            if bottleneck < 0 or allocated < bottleneck:
                bottleneck = allocated
        if bottleneck < 0:
            return snapshot.node_at(result.source_ident).bandwidth_kbps
        return bottleneck
    allocations = allocated_link_bandwidths(result, snapshot)
    if not allocations:
        return snapshot.node_at(result.source_ident).bandwidth_kbps
    return min(allocations.values())


def average_children_per_internal_node(result: MulticastResult | FlatTree) -> float:
    """The Figure 6 x-axis: mean out-degree over non-leaf tree nodes."""
    if isinstance(result, FlatTree):
        perf.COUNTERS.array_passes += 1
        internal = 0
        total = 0
        for count in result.child_count:
            if count > 0:
                internal += 1
                total += count
        if internal == 0:
            return 0.0
        return total / internal
    counts = [c for c in result.children_counts().values() if c > 0]
    if not counts:
        return 0.0
    return sum(counts) / len(counts)
