"""Measurement of the paper's performance metrics.

"Throughput and latency are the two major performance metrics for a
multicast application" (Section 6).  Latency is measured structurally
as multicast path length (overlay hops from the source); throughput via
the bottleneck-link model of Section 6.1; Section 5.1's forwarding-load
argument gets its own module.
"""

from repro.metrics.tree_stats import TreeStats, summarize_tree
from repro.metrics.throughput import (
    allocated_link_bandwidths,
    average_children_per_internal_node,
    sustainable_throughput,
)
from repro.metrics.load import ForwardingLoad, flooding_load, single_tree_load

__all__ = [
    "TreeStats",
    "summarize_tree",
    "allocated_link_bandwidths",
    "average_children_per_internal_node",
    "sustainable_throughput",
    "ForwardingLoad",
    "flooding_load",
    "single_tree_load",
]
