"""Bandwidth-to-capacity conversion (Section 6 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

#: CAM-Chord needs ``c_x >= 2``: with capacity 2 the neighbor identifiers
#: ``x + 1 * 2**i`` degenerate to exactly the classic Chord finger table,
#: which is the smallest table that still guarantees O(log n) lookups.
CAM_CHORD_MIN_CAPACITY = 2

#: CAM-Koorde requires ``c_x >= 4`` (Section 4.1): the mandatory basic
#: neighbor group is {predecessor, successor, x/2, 2^(b-1) + x/2}.
CAM_KOORDE_MIN_CAPACITY = 4


def capacity_from_bandwidth(
    bandwidth_kbps: float, per_link_kbps: float, minimum: int = 1
) -> int:
    """Compute ``c_x = floor(B_x / p)``, clamped to ``minimum``.

    ``per_link_kbps`` is the paper's system parameter ``p``: the desired
    bandwidth each multicast-tree link should sustain.  Lowering ``p``
    raises every node's capacity (shallower trees, lower per-link rate);
    raising ``p`` does the opposite.  This is the single tuning knob of
    the throughput/latency trade-off in Figure 8.
    """
    if per_link_kbps <= 0:
        raise ValueError(f"per-link bandwidth must be positive, got {per_link_kbps}")
    if bandwidth_kbps < 0:
        raise ValueError(f"bandwidth must be >= 0, got {bandwidth_kbps}")
    return max(minimum, int(bandwidth_kbps // per_link_kbps))


@dataclass(frozen=True)
class CapacityModel:
    """Derives capacities from upload bandwidths for one overlay family.

    ``minimum`` is the overlay-specific floor (``CAM_CHORD_MIN_CAPACITY``
    or ``CAM_KOORDE_MIN_CAPACITY``).  The floor matters for correctness,
    not just performance: a CAM-Koorde node below the floor cannot even
    populate its mandatory basic neighbor group.
    """

    per_link_kbps: float
    minimum: int = 1

    def __post_init__(self) -> None:
        if self.per_link_kbps <= 0:
            raise ValueError(
                f"per-link bandwidth must be positive, got {self.per_link_kbps}"
            )
        if self.minimum < 1:
            raise ValueError(f"minimum capacity must be >= 1, got {self.minimum}")

    def capacity(self, bandwidth_kbps: float) -> int:
        """Capacity of a node with the given upload bandwidth."""
        return capacity_from_bandwidth(
            bandwidth_kbps, self.per_link_kbps, minimum=self.minimum
        )

    def capacities(self, bandwidths_kbps: list[float]) -> list[int]:
        """Vectorized :meth:`capacity`."""
        return [self.capacity(b) for b in bandwidths_kbps]
