"""Node capacity model.

Capacity ``c_x`` is "the maximum number of direct children that a node
is willing to forward multicast messages" (Section 2).  Section 6 ties
it to upload bandwidth: ``c_x = floor(B_x / p)`` where ``p`` is the
system-wide desired bandwidth per multicast-tree link.
"""

from repro.capacity.model import (
    CAM_CHORD_MIN_CAPACITY,
    CAM_KOORDE_MIN_CAPACITY,
    CapacityModel,
    capacity_from_bandwidth,
)
from repro.capacity.distributions import (
    BandwidthDistribution,
    CapacityDistribution,
    FixedCapacity,
    UniformBandwidth,
    UniformCapacity,
)

__all__ = [
    "CAM_CHORD_MIN_CAPACITY",
    "CAM_KOORDE_MIN_CAPACITY",
    "CapacityModel",
    "capacity_from_bandwidth",
    "BandwidthDistribution",
    "CapacityDistribution",
    "FixedCapacity",
    "UniformCapacity",
    "UniformBandwidth",
]
