"""Capacity and bandwidth distributions used by the paper's evaluation.

Defaults reproduce Section 6: capacities uniform in ``[4..10]``, upload
bandwidths uniform in ``[400, 1000]`` kbps.  Every draw takes an
explicit :class:`random.Random` so experiments are reproducible.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Any


class CapacityDistribution(ABC):
    """A distribution over integer node capacities."""

    @abstractmethod
    def sample(self, rng: Random) -> int:
        """Draw one capacity."""

    @abstractmethod
    def mean(self) -> float:
        """Expected capacity (used for the Figure 11 x-axis)."""

    def sample_many(self, count: int, rng: Random) -> list[int]:
        """Draw ``count`` capacities."""
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class FixedCapacity(CapacityDistribution):
    """Every node has the same capacity (the paper's legend ``"4"``)."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 1:
            raise ValueError(f"capacity must be >= 1, got {self.value}")

    def sample(self, rng: Random) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class UniformCapacity(CapacityDistribution):
    """Capacities uniform on ``[low..high]`` (the paper's ``"[x..y]"``)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 1:
            raise ValueError(f"capacity must be >= 1, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"invalid range [{self.low}..{self.high}]")

    def sample(self, rng: Random) -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __str__(self) -> str:
        return f"[{self.low}..{self.high}]"


@dataclass(frozen=True)
class HeavyTailCapacity(CapacityDistribution):
    """Bounded-Pareto capacities: most nodes near ``low``, a few whales.

    The shape the multi-source overlay literature evaluates against
    (a handful of high-degree hubs carrying most of the fanout): each
    draw is ``low`` scaled by a Pareto(``alpha``) variate, truncated at
    ``high``.  Smaller ``alpha`` means heavier tail.
    """

    low: int = 2
    high: int = 64
    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.low < 1:
            raise ValueError(f"capacity must be >= 1, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"invalid range [{self.low}..{self.high}]")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")

    def sample(self, rng: Random) -> int:
        return min(self.high, int(self.low * rng.paretovariate(self.alpha)))

    def mean(self) -> float:
        """Empirical mean of the truncated law (no closed form needed
        at the precision the figure axes use): 4096 quasi-random draws
        from a fixed stream, so the value is stable."""
        rng = Random(f"heavytail-mean:{self.low}:{self.high}:{self.alpha}")
        draws = 4096
        return sum(self.sample(rng) for _ in range(draws)) / draws

    def __str__(self) -> str:
        return f"pareto({self.alpha:g})[{self.low}..{self.high}]"


class BandwidthDistribution(ABC):
    """A distribution over upload bandwidths in kbps."""

    @abstractmethod
    def sample(self, rng: Random) -> float:
        """Draw one bandwidth."""

    @abstractmethod
    def mean(self) -> float:
        """Expected bandwidth."""

    @abstractmethod
    def minimum(self) -> float:
        """Infimum of the support (the baseline bottleneck bandwidth)."""

    def sample_many(self, count: int, rng: Random) -> list[float]:
        """Draw ``count`` bandwidths."""
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class UniformBandwidth(BandwidthDistribution):
    """Bandwidths uniform on ``[low, high]`` kbps.

    The paper's default range is ``[400, 1000]``; Figure 7 sweeps the
    upper bound with the lower bound pinned at 400, and observes that
    the CAM-over-baseline throughput ratio grows like ``(a + b) / 2a``
    — :meth:`heterogeneity` computes exactly that statistic.
    """

    low: float = 400.0
    high: float = 1000.0

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"invalid range [{self.low}, {self.high}]")

    def sample(self, rng: Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def minimum(self) -> float:
        return self.low

    def heterogeneity(self) -> float:
        """The paper's bandwidth-heterogeneity measure ``(a + b) / 2a``."""
        return (self.low + self.high) / (2 * self.low)

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}] kbps"


# -- JSON codec ---------------------------------------------------------------
#
# Distributions are frozen dataclasses, so a tagged field dump is a
# faithful round-trip; scenario specs (repro.scenarios) and group
# workloads (repro.workloads.GroupSpec) embed them through this codec.

_CAPACITY_KINDS: dict[str, type[CapacityDistribution]] = {}
_BANDWIDTH_KINDS: dict[str, type[BandwidthDistribution]] = {}


def _register_codecs() -> None:
    for cls in (FixedCapacity, UniformCapacity, HeavyTailCapacity):
        _CAPACITY_KINDS[cls.__name__] = cls
    for cls in (UniformBandwidth,):
        _BANDWIDTH_KINDS[cls.__name__] = cls


def distribution_to_json(
    distribution: CapacityDistribution | BandwidthDistribution,
) -> dict[str, Any]:
    """One distribution as a tagged, JSON-safe dict."""
    name = type(distribution).__name__
    if name not in _CAPACITY_KINDS and name not in _BANDWIDTH_KINDS:
        raise TypeError(f"no JSON codec for distribution {name}")
    out: dict[str, Any] = {"kind": name}
    out.update(vars(distribution))
    return out


def capacity_distribution_from_json(raw: dict[str, Any]) -> CapacityDistribution:
    """Inverse of :func:`distribution_to_json` for capacity laws."""
    kind = dict(raw).pop("kind", None)
    try:
        cls = _CAPACITY_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown capacity distribution {kind!r}; "
            f"choose from {sorted(_CAPACITY_KINDS)}"
        ) from None
    return cls(**{k: v for k, v in raw.items() if k != "kind"})


def bandwidth_distribution_from_json(raw: dict[str, Any]) -> BandwidthDistribution:
    """Inverse of :func:`distribution_to_json` for bandwidth laws."""
    kind = dict(raw).pop("kind", None)
    try:
        cls = _BANDWIDTH_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown bandwidth distribution {kind!r}; "
            f"choose from {sorted(_BANDWIDTH_KINDS)}"
        ) from None
    return cls(**{k: v for k, v in raw.items() if k != "kind"})


_register_codecs()


def expected_log_capacity(distribution: CapacityDistribution) -> float:
    """Monte-Carlo-free ``E[log2 c]`` for the uniform/fixed distributions.

    Theorems 2/4/6 express path lengths through ``log c`` terms; this
    helper evaluates the exact expectation for the distributions the
    paper sweeps, so benchmark assertions can compare measured depths
    against the theoretical scaling.
    """
    if isinstance(distribution, FixedCapacity):
        return math.log2(distribution.value)
    if isinstance(distribution, UniformCapacity):
        values = range(distribution.low, distribution.high + 1)
        return sum(math.log2(v) for v in values) / len(values)
    raise TypeError(f"unsupported distribution: {type(distribution).__name__}")
