"""Lower scenario specs into the fault-campaign machinery.

:func:`compile_cell` turns ``(spec, system, seed)`` into a
:class:`CompiledCell` — a frozen, JSON round-trippable bundle of the
things :func:`repro.faults.campaign.run_plan` executes:

* a :class:`~repro.systems.MemberSpec`, sampled from the topology axis
  (capacity law, bandwidths ``c * p``, identifiers either hash-uniform
  or Hilbert-placed from sampled coordinates);
* a :class:`~repro.faults.plan.FaultPlan`, merging the fault axis's
  schedule with the workload axis's churn trace *lowered to fault
  events* — a churn JOIN becomes a ``join`` event with a capacity
  drawn from the same law, LEAVE/CRASH become rank-addressed
  ``leave``/``crash`` events — so "join/leave during dissemination" is
  exactly the chaos the quiesce-then-check oracles already judge;
* a :class:`~repro.scenarios.spec.LatencySpec` the runner rebuilds
  into a live model, pinning Hilbert coordinates so geographic delay
  matches geographic identifier placement.

All randomness draws from named SHA-512 streams
(:func:`repro.experiments.common.point_rng`), membership streams keyed
*without* the system name — every system in a matrix row sees the
same members, churn and faults, so rows compare systems and nothing
else.  Compiling the same ``(spec, system, seed)`` twice is
byte-identical; that property is what lets ``--jobs N`` matrix runs
reproduce the serial run exactly and lets the ddmin shrinker replay
candidate cells without retry noise.

:func:`run_cell` executes a cell twice over: the live phase through
:func:`~repro.faults.campaign.run_plan` (inject, quiesce, repair,
multicast, judge every oracle), then a static phase over the same
membership — explicit trees from ``static_sources`` distinct sources,
measured with the Section 6.1 bottleneck-throughput model and the
Section 5.1 forwarding-load accounting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

from repro.experiments.common import point_rng
from repro.faults.campaign import PlanOutcome, run_plan
from repro.faults.plan import FaultEvent, FaultPlan
from repro.metrics.load import flooding_load
from repro.metrics.throughput import sustainable_throughput
from repro.scenarios.spec import LatencySpec, ScenarioSpec
from repro.sim.latency import ConstantLatency, GeographicLatency, LatencyModel
from repro.systems import MemberSpec, get_system


def _scenario_rng(seed: int, name: str, *parts: object):
    """One named stream of a scenario's compilation."""
    return point_rng(seed, "scenario", name, *parts)


def _sample_members(
    spec: ScenarioSpec, seed: int
) -> tuple[MemberSpec, tuple[tuple[float, float], ...] | None]:
    """The row's shared membership (system-independent stream)."""
    from repro.idspace.geography import geographic_identifiers
    from repro.idspace.ring import IdentifierSpace
    from repro.overlay.base import sample_identifiers

    topology = spec.topology
    rng = _scenario_rng(seed, spec.name, "members")
    capacities = tuple(
        topology.capacities.sample(rng) for _ in range(topology.size)
    )
    bandwidths = tuple(
        capacity * topology.per_link_kbps for capacity in capacities
    )
    coordinates: tuple[tuple[float, float], ...] | None = None
    if topology.placement == "hilbert":
        coordinates = tuple(
            (rng.random(), rng.random()) for _ in range(topology.size)
        )
        identifiers = tuple(
            geographic_identifiers(
                list(coordinates), IdentifierSpace(topology.space_bits)
            )
        )
    else:
        identifiers = tuple(
            sample_identifiers(topology.size, 1 << topology.space_bits, rng)
        )
    members = MemberSpec(
        space_bits=topology.space_bits,
        identifiers=identifiers,
        capacities=capacities,
        bandwidths=bandwidths,
    )
    return members, coordinates


def _lower_churn(spec: ScenarioSpec, seed: int) -> list[FaultEvent]:
    """Churn trace -> rank-addressed fault events (system-independent)."""
    churn = spec.workload.churn
    if churn.kind == "none":
        return []
    from repro.churn.trace import ChurnKind

    trace = churn.trace(
        spec.faults.fault_window, rng=_scenario_rng(seed, spec.name, "churn")
    )
    lowering = _scenario_rng(seed, spec.name, "churn-lowering")
    events: list[FaultEvent] = []
    for event in trace:
        if event.kind is ChurnKind.JOIN:
            capacity = spec.topology.capacities.sample(lowering)
            events.append(
                FaultEvent(event.time, "join", capacity=max(1, capacity))
            )
        else:
            action = "crash" if event.kind is ChurnKind.CRASH else "leave"
            events.append(
                FaultEvent(event.time, action, a=lowering.randrange(1 << 16))
            )
    return events


def _fault_events(
    spec: ScenarioSpec, system: str, seed: int
) -> tuple[list[FaultEvent], float]:
    """The fault axis's schedule and window, embedded or generated."""
    faults = spec.faults
    if faults.generate_index is None:
        return list(faults.events), faults.fault_window
    from repro.faults.plan import generate_plan

    generated = generate_plan(system, faults.generate_index, campaign_seed=seed)
    return list(generated.events), max(faults.fault_window, generated.fault_window)


@dataclass(frozen=True)
class CompiledCell:
    """One (scenario, system) matrix cell, lowered and frozen.

    Everything :func:`run_cell` touches lives here as a value, so a
    cell pickles cleanly to pool workers, dumps to JSON for artifact
    replay, and re-runs byte-identically.
    """

    scenario: str
    system: str
    seed: int
    plan: FaultPlan
    members: MemberSpec
    latency: LatencySpec
    coordinates: tuple[tuple[float, float], ...] | None = None
    message_kbits: float = 1.0
    static_sources: int = 3
    #: concurrent service-plane groups (1 = classic single-group cell;
    #: >1 adds the event-driven plane phase to run_cell)
    groups: int = 1

    def build_latency(self) -> LatencyModel:
        """The live latency model, coordinates pinned when geographic."""
        if self.latency.kind == "constant":
            return ConstantLatency(self.latency.seconds)
        model = GeographicLatency(
            base=self.latency.base,
            per_unit=self.latency.per_unit,
            jitter=self.latency.jitter,
            placement_seed=self.seed,
        )
        if self.coordinates is not None:
            for ident, (x, y) in zip(self.members.identifiers, self.coordinates):
                model.place(ident, x, y)
        return model

    def with_plan(self, plan: FaultPlan) -> "CompiledCell":
        """The same cell around a candidate plan (the shrinker's hook).

        The ddmin size pass shrinks ``plan.size``; the membership (and
        its pinned coordinates) truncates to the plan's first ``size``
        members so the cell stays self-consistent.
        """
        members = self.members
        coordinates = self.coordinates
        if plan.size < len(members):
            members = MemberSpec(
                space_bits=members.space_bits,
                identifiers=members.identifiers[: plan.size],
                capacities=members.capacities[: plan.size],
                bandwidths=members.bandwidths[: plan.size],
            )
            if coordinates is not None:
                coordinates = coordinates[: plan.size]
        return replace(self, plan=plan, members=members, coordinates=coordinates)

    # -- JSON ------------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "scenario": self.scenario,
            "system": self.system,
            "seed": self.seed,
            "plan": self.plan.to_json_dict(),
            "members": {
                "space_bits": self.members.space_bits,
                "identifiers": list(self.members.identifiers),
                "capacities": list(self.members.capacities),
                "bandwidths": list(self.members.bandwidths),
            },
            "latency": self.latency.to_json_dict(),
            "message_kbits": self.message_kbits,
            "static_sources": self.static_sources,
        }
        if self.coordinates is not None:
            out["coordinates"] = [list(pair) for pair in self.coordinates]
        if self.groups != 1:  # omitted when 1: existing artifacts keep bytes
            out["groups"] = self.groups
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "CompiledCell":
        members = raw["members"]
        return cls(
            scenario=str(raw["scenario"]),
            system=str(raw["system"]),
            seed=int(raw["seed"]),
            plan=FaultPlan.from_json_dict(raw["plan"]),
            members=MemberSpec(
                space_bits=int(members["space_bits"]),
                identifiers=tuple(int(i) for i in members["identifiers"]),
                capacities=tuple(int(c) for c in members["capacities"]),
                bandwidths=tuple(float(b) for b in members["bandwidths"]),
            ),
            latency=LatencySpec.from_json_dict(raw["latency"]),
            coordinates=(
                tuple((float(x), float(y)) for x, y in raw["coordinates"])
                if raw.get("coordinates") is not None
                else None
            ),
            message_kbits=float(raw.get("message_kbits", 1.0)),
            static_sources=int(raw.get("static_sources", 3)),
            groups=int(raw.get("groups", 1)),
        )


def save_cell(cell: CompiledCell, path: str) -> None:
    """Write one compiled cell as JSON (the replayable artifact form)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(cell.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_cell(path: str) -> CompiledCell:
    """Read a cell written by :func:`save_cell`."""
    with open(path, "r", encoding="utf-8") as handle:
        return CompiledCell.from_json_dict(json.load(handle))


def compile_cell(spec: ScenarioSpec, system: str, seed: int = 0) -> CompiledCell:
    """Lower one scenario for one system, deterministically.

    Membership, churn and embedded faults draw from streams keyed
    without the system name (rows share them); only the plan seed and
    generated-fault family see the system.
    """
    get_system(system)  # fail fast on unknown names
    members, coordinates = _sample_members(spec, seed)
    events = _lower_churn(spec, seed)
    fault_events, fault_window = _fault_events(spec, system, seed)
    events.extend(fault_events)
    events.sort(key=lambda e: (e.time, e.action))
    plan = FaultPlan(
        system=system,
        size=spec.topology.size,
        seed=_scenario_rng(seed, spec.name, system, "plan-seed").randrange(1 << 31),
        events=tuple(events),
        space_bits=spec.topology.space_bits,
        uniform_fanout=spec.uniform_fanout,
        fault_window=fault_window,
        multicasts=spec.workload.multicasts,
        propagation_window=spec.workload.propagation_window,
        label=spec.name,
    )
    return CompiledCell(
        scenario=spec.name,
        system=system,
        seed=seed,
        plan=plan,
        members=members,
        latency=spec.topology.latency,
        coordinates=coordinates,
        message_kbits=spec.workload.message_kbits,
        static_sources=spec.workload.static_sources,
        groups=spec.workload.groups,
    )


@dataclass(frozen=True)
class CellOutcome:
    """Everything one cell execution produced, as plain data."""

    cell: CompiledCell
    outcome: PlanOutcome
    throughput_kbps: float | None = None
    load_max_over_mean: float = 0.0
    load_cv: float = 0.0
    load_idle_fraction: float = 0.0
    #: event-driven plane phase metrics (only when cell.groups > 1)
    plane: dict[str, Any] | None = None

    @property
    def passed(self) -> bool:
        return self.outcome.passed

    def mean_delivery(self) -> float | None:
        report = self.outcome.report()
        return report.mean_delivery_ratio if report.has_measurements else None

    def row(self) -> dict[str, Any]:
        """One result-table row as JSON-safe data."""
        delivery = self.mean_delivery()
        row = {
            "scenario": self.cell.scenario,
            "system": self.cell.system,
            "passed": self.passed,
            "violations": [str(v) for v in self.outcome.violations],
            "mean_delivery": delivery,
            "duplicates": sum(self.outcome.duplicates_per_message),
            "final_membership": self.outcome.final_membership,
            "throughput_kbps": self.throughput_kbps,
            "load_max_over_mean": self.load_max_over_mean,
            "load_cv": self.load_cv,
            "load_idle_fraction": self.load_idle_fraction,
        }
        if self.plane is not None:  # single-group rows keep their bytes
            row["plane"] = self.plane
        return row


def _run_plane_phase(cell: CompiledCell) -> dict[str, Any]:
    """The multi-group service-plane phase of a ``groups > 1`` cell.

    The cell's membership becomes a shared host population; ``groups``
    overlapping groups are sampled from it, every group originates the
    workload's ``multicasts`` sends interleaved on one clock, and each
    group sees one mid-stream join and one mid-stream leave while sends
    are in flight.  The quiesce oracles (completeness against frozen
    send-time membership, zero sequence gaps, zero duplicates) must
    hold — a violation raises, failing the cell loudly rather than
    degrading a metric.
    """
    from repro.multicast.plane import ServicePlane

    plane = ServicePlane(space_bits=cell.members.space_bits)
    names = [f"m{index:04d}" for index in range(len(cell.members))]
    for name, kbps in zip(names, cell.members.bandwidths):
        plane.register_host(name, max(float(kbps), 1.0))
    rng = _scenario_rng(cell.seed, cell.scenario, cell.system, "plane")
    group_size = max(4, min(len(names) - 1, 8))
    window = max(cell.plan.propagation_window, 1.0)
    sends = max(cell.plan.multicasts, 1)
    for index in range(cell.groups):
        group = f"g{index:03d}"
        members = rng.sample(names, group_size)
        plane.create_group(group, members, kind=cell.system)
        # the leaver never sources a send: a send_later firing after
        # the leave would otherwise originate at a non-member
        leaver = members[rng.randrange(len(members))]
        sources = [name for name in members if name != leaver]
        for turn in range(sends):
            offset = rng.uniform(0.0, window)
            source = sources[rng.randrange(len(sources))]
            plane.send_later(offset, group, source, cell.message_kbits)
        # one join and one leave mid-window, while sends are in flight
        free = sorted(set(names) - set(members))
        if free:
            joiner = rng.choice(free)
            plane.simulator.call_at(
                rng.uniform(0.0, window),
                lambda g=group, h=joiner: plane.join(g, h),
            )
        plane.simulator.call_at(
            rng.uniform(0.0, window),
            lambda g=group, h=leaver: plane.leave(g, h),
        )
    plane.drain()
    plane.verify_quiesced()
    report = plane.report()
    return {
        "groups": cell.groups,
        "deliveries": report.total_deliveries,
        "deliveries_per_sec": round(report.deliveries_per_sec(), 4),
        "deferrals": report.total_deferrals,
        "max_queue_depth": max(
            (row["max_queue_depth"] for row in report.rows), default=0
        ),
    }


def run_cell(cell: CompiledCell) -> CellOutcome:
    """Execute one cell: live fault phase, then static measurement,
    then (for ``groups > 1`` cells) the event-driven plane phase."""
    from repro.multicast.session import MulticastGroup

    outcome = run_plan(
        cell.plan, member_spec=cell.members, latency=cell.build_latency()
    )

    descriptor = get_system(cell.system)
    snapshot = cell.members.snapshot(min_capacity=descriptor.min_capacity)
    group = MulticastGroup.from_snapshot(
        cell.system, snapshot, uniform_fanout=cell.plan.uniform_fanout
    )
    rng = _scenario_rng(cell.seed, cell.scenario, cell.system, "static-sources")
    count = min(cell.static_sources, len(cell.members))
    sources = rng.sample(cell.members.identifiers, count)
    results = [
        group.multicast_from(snapshot.node_at(ident)) for ident in sources
    ]
    try:
        throughput: float | None = min(
            sustainable_throughput(result, snapshot) for result in results
        )
    except ValueError:
        throughput = None  # membership carries no usable bandwidths
    load = flooding_load(results, message_kbits=cell.message_kbits)
    plane = _run_plane_phase(cell) if cell.groups > 1 else None
    return CellOutcome(
        cell=cell,
        outcome=outcome,
        throughput_kbps=throughput,
        load_max_over_mean=load.max_over_mean,
        load_cv=load.coefficient_of_variation,
        load_idle_fraction=load.idle_fraction,
        plane=plane,
    )
