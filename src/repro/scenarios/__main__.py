"""Scenario matrix CLI: list, show, compile, run, replay.

::

    # what's in the library
    python -m repro.scenarios list

    # one scenario as its single-file JSON form
    python -m repro.scenarios show flash-crowd > flash-crowd.json

    # lower one cell to its replayable compiled form
    python -m repro.scenarios compile --scenario flash-crowd \
        --system cam-chord --out cell.json

    # the full matrix: 5 scenarios x 4 systems, two workers, tables
    # and minimized failing cells written as artifacts
    python -m repro.scenarios run --scenario all --systems all \
        --jobs 2 --seed 0 --out-dir scenarios_out

    # replay either artifact kind: a scenario spec (re-lowered) or a
    # compiled cell (run verbatim); exits 1 if any oracle fires
    python -m repro.scenarios replay flash-crowd.json --systems cam-chord
    python -m repro.scenarios replay cell.json

Seed handling matches every other CLI in the repo: one ``--seed``
base value, per-cell streams derived by string-seeding ``Random`` with
``"seed:scenario:<name>:..."`` (SHA-512 underneath), so ``--jobs N``
output is byte-identical to the serial run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.common import SEED_HELP
from repro.scenarios.compile import (
    CompiledCell,
    compile_cell,
    load_cell,
    run_cell,
    save_cell,
)
from repro.scenarios.library import LIBRARY, get_scenario, scenario_names
from repro.scenarios.runner import (
    compile_matrix,
    render_tables,
    run_matrix,
    shrink_cell,
)
from repro.scenarios.spec import ScenarioSpec
from repro.systems import system_names


def _resolve_scenarios(arg: str) -> list[ScenarioSpec]:
    if arg in ("all", ""):
        return [LIBRARY[name] for name in scenario_names()]
    return [get_scenario(name) for name in arg.split(",")]


def _resolve_systems(arg: str) -> list[str]:
    if arg in ("all", ""):
        return list(system_names())
    valid = set(system_names())
    names = arg.split(",")
    for name in names:
        if name not in valid:
            raise SystemExit(f"unknown system {name!r}; choose from {sorted(valid)}")
    return names


def _cmd_list(args: argparse.Namespace) -> int:
    for name in scenario_names():
        spec = LIBRARY[name]
        shape = (
            f"n={spec.topology.size} "
            f"caps={spec.topology.capacities} "
            f"churn={spec.workload.churn.kind} "
            f"faults={len(spec.faults.events)}"
        )
        print(f"{name:<24} {shape:<44} {spec.description}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    print(json.dumps(spec.to_json_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    cell = compile_cell(spec, args.system, args.seed)
    if args.out:
        save_cell(cell, args.out)
        print(f"wrote {args.out}: {cell.plan.describe()}")
    else:
        print(json.dumps(cell.to_json_dict(), indent=2, sort_keys=True))
    return 0


def _print_cell(outcome) -> None:
    verdict = "ok" if outcome.passed else f"{len(outcome.outcome.violations)} violation(s)"
    print(
        f"{outcome.cell.scenario} x {outcome.cell.system}: {verdict} "
        f"({outcome.outcome.plan.describe()})"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    scenarios = _resolve_scenarios(args.scenario)
    systems = _resolve_systems(args.systems)
    cells = compile_matrix(scenarios, systems, args.seed)
    print(
        f"matrix: {len(scenarios)} scenarios x {len(systems)} systems = "
        f"{len(cells)} cells, seed={args.seed}, jobs={args.jobs}"
    )
    outcomes = run_matrix(
        cells, jobs=args.jobs, progress=None if args.quiet else _print_cell
    )
    print(render_tables(outcomes))

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        table_path = os.path.join(args.out_dir, "results.json")
        with open(table_path, "w", encoding="utf-8") as handle:
            json.dump(
                [outcome.row() for outcome in outcomes],
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"result table written: {table_path}")

    failures = [outcome for outcome in outcomes if not outcome.passed]
    if failures and not args.no_shrink:
        for index, failing in enumerate(failures):
            minimized, final = shrink_cell(
                failing, log=None if args.quiet else print
            )
            if args.out_dir:
                path = os.path.join(
                    args.out_dir,
                    f"min-{minimized.scenario}-{minimized.system}-{index}.json",
                )
                save_cell(minimized, path)
                print(
                    f"minimized repro written: {path} "
                    f"({minimized.plan.describe()})"
                )
            else:
                _print_cell(final)
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    with open(args.artifact, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if "plan" in raw and "members" in raw:
        outcomes = [run_cell(CompiledCell.from_json_dict(raw))]
    elif "topology" in raw:
        spec = ScenarioSpec.from_json_dict(raw)
        systems = _resolve_systems(args.systems)
        outcomes = [
            run_cell(compile_cell(spec, system, args.seed)) for system in systems
        ]
    else:
        raise SystemExit(
            f"{args.artifact}: neither a scenario spec (topology/workload/"
            f"faults) nor a compiled cell (plan/members)"
        )
    for outcome in outcomes:
        _print_cell(outcome)
        for violation in outcome.outcome.violations:
            print(f"  {violation}")
    return 1 if any(not outcome.passed for outcome in outcomes) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="declarative workload x fault x topology scenario matrix",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="list the scenario library")
    lister.set_defaults(func=_cmd_list)

    show = sub.add_parser("show", help="print one scenario's JSON spec")
    show.add_argument("scenario", choices=scenario_names())
    show.set_defaults(func=_cmd_show)

    comp = sub.add_parser("compile", help="lower one cell to replayable JSON")
    comp.add_argument("--scenario", required=True, choices=scenario_names())
    comp.add_argument("--system", required=True, choices=system_names())
    comp.add_argument("--seed", type=int, default=0, help=SEED_HELP)
    comp.add_argument("--out", default="")
    comp.set_defaults(func=_cmd_compile)

    run = sub.add_parser("run", help="run a scenario x system matrix")
    run.add_argument(
        "--scenario",
        default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    run.add_argument(
        "--systems",
        default="all",
        help="comma-separated system names, or 'all' (default)",
    )
    run.add_argument("--seed", type=int, default=0, help=SEED_HELP)
    run.add_argument("--jobs", type=int, default=1)
    run.add_argument("--out-dir", default="", help="where tables and repros go")
    run.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip ddmin minimization of failing cells",
    )
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser(
        "replay", help="re-run a saved scenario spec or compiled cell"
    )
    replay.add_argument("artifact", help="JSON from 'show', 'compile' or 'run'")
    replay.add_argument(
        "--systems",
        default="all",
        help="systems to lower a scenario spec for (ignored for cells)",
    )
    replay.add_argument("--seed", type=int, default=0, help=SEED_HELP)
    replay.set_defaults(func=_cmd_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
