"""Declarative scenario specs: one frozen value, three axes.

A :class:`ScenarioSpec` composes everything one resilience experiment
varies, each axis an independent frozen value:

* :class:`TopologyAxis` — who the members are: group size, identifier
  space, the capacity law (uniform, fixed, heavy-tail Pareto), the
  per-link rate that derives bandwidths, and *where* members sit —
  hash-uniform identifiers or the Section 5.2 Geographic Layout
  (Hilbert-curve placement) with a matching distance-proportional
  latency model.
* :class:`WorkloadAxis` — what the group does: how many multicasts,
  how long each propagates, and a :class:`ChurnModel` describing
  join/leave/crash dynamics *during* dissemination (none, Poisson,
  FastTrack sessions, or sinusoidal diurnal swing).
* :class:`FaultAxis` — what goes wrong: an embedded schedule of
  :class:`~repro.faults.plan.FaultEvent` primitives, or a reference to
  the generated-plan family (``generate_index``) of
  :func:`repro.faults.plan.generate_plan`.

Like :class:`~repro.faults.plan.FaultPlan`, a spec is a *value*:
frozen, JSON round-trippable (:meth:`ScenarioSpec.to_json_dict` /
:meth:`ScenarioSpec.from_json_dict`, :func:`save_scenario` /
:func:`load_scenario`), and every byte of its compiled form derives
from ``(spec, system, seed)`` — the compiler (:mod:`.compile`) draws
all randomness from named SHA-512 streams, so compiling twice yields
byte-identical cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.capacity.distributions import (
    CapacityDistribution,
    UniformCapacity,
    capacity_distribution_from_json,
    distribution_to_json,
)
from repro.churn.trace import ChurnTrace, diurnal_trace, poisson_trace, session_trace
from repro.faults.plan import FaultEvent

#: Churn models a workload axis may name.
CHURN_KINDS = ("none", "poisson", "session", "diurnal")

#: Identifier placement policies a topology axis may name.
PLACEMENTS = ("uniform", "hilbert")

#: Latency models a topology axis may name.
LATENCY_KINDS = ("constant", "geographic")


@dataclass(frozen=True)
class ChurnModel:
    """Membership dynamics during the fault window, as data.

    ``kind`` selects the generator from :mod:`repro.churn.trace`;
    only the fields that generator reads matter (the rest keep their
    defaults so JSON stays terse).  ``kind="none"`` yields an empty
    trace.
    """

    kind: str = "none"
    join_rate: float = 0.0  # poisson: joins per simulated second
    depart_rate: float = 0.0  # poisson: departures per simulated second
    arrival_rate: float = 0.0  # session: arrivals per simulated second
    mean_lifetime: float = 0.0  # session: expected stay, seconds
    trough_rate: float = 0.0  # diurnal: rate floor
    peak_rate: float = 0.0  # diurnal: rate ceiling
    period: float = 60.0  # diurnal: full day/night cycle, seconds
    crash_fraction: float = 1.0  # share of departures that are abrupt

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn kind {self.kind!r}; choose from {CHURN_KINDS}"
            )

    def trace(self, duration: float, rng: Random) -> ChurnTrace:
        """Materialize the churn trace over ``[0, duration)``."""
        if self.kind == "none":
            return ChurnTrace((), duration)
        if self.kind == "poisson":
            return poisson_trace(
                duration,
                join_rate=self.join_rate,
                depart_rate=self.depart_rate,
                crash_fraction=self.crash_fraction,
                rng=rng,
            )
        if self.kind == "session":
            return session_trace(
                duration,
                arrival_rate=self.arrival_rate,
                mean_lifetime=self.mean_lifetime,
                crash_fraction=self.crash_fraction,
                rng=rng,
            )
        return diurnal_trace(
            duration,
            trough_rate=self.trough_rate,
            peak_rate=self.peak_rate,
            period=self.period,
            crash_fraction=self.crash_fraction,
            rng=rng,
        )

    def to_json_dict(self) -> dict[str, Any]:
        defaults = ChurnModel()
        out: dict[str, Any] = {"kind": self.kind}
        for name in (
            "join_rate",
            "depart_rate",
            "arrival_rate",
            "mean_lifetime",
            "trough_rate",
            "peak_rate",
            "period",
            "crash_fraction",
        ):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                out[name] = value
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "ChurnModel":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in raw.items() if k in known})


@dataclass(frozen=True)
class LatencySpec:
    """A latency model as data (the live model object is not a value)."""

    kind: str = "constant"
    seconds: float = 0.05  # constant: one-way delay
    base: float = 0.01  # geographic: floor delay
    per_unit: float = 0.2  # geographic: delay per unit torus distance
    jitter: float = 0.0  # geographic: multiplicative noise amplitude

    def __post_init__(self) -> None:
        if self.kind not in LATENCY_KINDS:
            raise ValueError(
                f"unknown latency kind {self.kind!r}; choose from {LATENCY_KINDS}"
            )

    def to_json_dict(self) -> dict[str, Any]:
        defaults = LatencySpec()
        out: dict[str, Any] = {"kind": self.kind}
        for name in ("seconds", "base", "per_unit", "jitter"):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                out[name] = value
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "LatencySpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in raw.items() if k in known})


@dataclass(frozen=True)
class TopologyAxis:
    """Who the members are and where they sit."""

    size: int = 16
    space_bits: int = 12
    capacities: CapacityDistribution = field(default_factory=lambda: UniformCapacity(4, 8))
    per_link_kbps: float = 100.0
    placement: str = "uniform"
    latency: LatencySpec = field(default_factory=LatencySpec)

    def __post_init__(self) -> None:
        if self.size < 4:
            raise ValueError(f"scenario groups need >= 4 members, got {self.size}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from {PLACEMENTS}"
            )
        if self.per_link_kbps <= 0:
            raise ValueError(f"per_link_kbps must be positive, got {self.per_link_kbps}")

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "space_bits": self.space_bits,
            "capacities": distribution_to_json(self.capacities),
            "per_link_kbps": self.per_link_kbps,
            "placement": self.placement,
            "latency": self.latency.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "TopologyAxis":
        return cls(
            size=int(raw.get("size", 16)),
            space_bits=int(raw.get("space_bits", 12)),
            capacities=capacity_distribution_from_json(raw["capacities"]),
            per_link_kbps=float(raw.get("per_link_kbps", 100.0)),
            placement=str(raw.get("placement", "uniform")),
            latency=LatencySpec.from_json_dict(raw.get("latency", {"kind": "constant"})),
        )


@dataclass(frozen=True)
class WorkloadAxis:
    """What the group does while the faults play out."""

    multicasts: int = 2
    propagation_window: float = 10.0
    churn: ChurnModel = field(default_factory=ChurnModel)
    message_kbits: float = 1.0
    static_sources: int = 3  # distinct sources probed in the static phase
    #: concurrent service-plane groups; 1 keeps the classic single-group
    #: scenario (no plane phase runs, outputs stay byte-identical)
    groups: int = 1

    def __post_init__(self) -> None:
        if self.multicasts < 0:
            raise ValueError(f"multicasts must be >= 0, got {self.multicasts}")
        if self.static_sources < 1:
            raise ValueError(
                f"static_sources must be >= 1, got {self.static_sources}"
            )
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "multicasts": self.multicasts,
            "propagation_window": self.propagation_window,
            "churn": self.churn.to_json_dict(),
            "message_kbits": self.message_kbits,
            "static_sources": self.static_sources,
        }
        if self.groups != 1:
            out["groups"] = self.groups
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "WorkloadAxis":
        return cls(
            multicasts=int(raw.get("multicasts", 2)),
            propagation_window=float(raw.get("propagation_window", 10.0)),
            churn=ChurnModel.from_json_dict(raw.get("churn", {"kind": "none"})),
            message_kbits=float(raw.get("message_kbits", 1.0)),
            static_sources=int(raw.get("static_sources", 3)),
            groups=int(raw.get("groups", 1)),
        )


@dataclass(frozen=True)
class FaultAxis:
    """What goes wrong, and over how long a window.

    ``events`` embeds an explicit schedule (the library scenarios do
    this — a spec file then fully describes its faults).  Setting
    ``generate_index`` instead references the seed-deterministic plan
    family of :func:`repro.faults.plan.generate_plan`: the compiler
    takes that plan's events and window, so a scenario can ride the
    same generated chaos the extK campaign sweeps.
    """

    fault_window: float = 20.0
    events: tuple[FaultEvent, ...] = ()
    generate_index: int | None = None

    def __post_init__(self) -> None:
        if self.fault_window < 0:
            raise ValueError(f"fault_window must be >= 0, got {self.fault_window}")
        if self.generate_index is not None and self.events:
            raise ValueError("provide events or generate_index, not both")
        for event in self.events:
            if event.time > self.fault_window:
                raise ValueError(
                    f"event at t={event.time} outside fault window "
                    f"{self.fault_window}"
                )

    def to_json_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"fault_window": self.fault_window}
        if self.generate_index is not None:
            out["generate_index"] = self.generate_index
        else:
            out["events"] = [event.to_json_dict() for event in self.events]
        return out

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "FaultAxis":
        return cls(
            fault_window=float(raw.get("fault_window", 20.0)),
            events=tuple(
                FaultEvent.from_json_dict(event) for event in raw.get("events", [])
            ),
            generate_index=(
                int(raw["generate_index"])
                if raw.get("generate_index") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario: name, three axes, a fanout for baselines."""

    name: str
    topology: TopologyAxis = field(default_factory=TopologyAxis)
    workload: WorkloadAxis = field(default_factory=WorkloadAxis)
    faults: FaultAxis = field(default_factory=FaultAxis)
    uniform_fanout: int = 4
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "topology": self.topology.to_json_dict(),
            "workload": self.workload.to_json_dict(),
            "faults": self.faults.to_json_dict(),
            "uniform_fanout": self.uniform_fanout,
        }

    @classmethod
    def from_json_dict(cls, raw: dict[str, Any]) -> "ScenarioSpec":
        return cls(
            name=str(raw["name"]),
            description=str(raw.get("description", "")),
            topology=TopologyAxis.from_json_dict(raw["topology"]),
            workload=WorkloadAxis.from_json_dict(raw["workload"]),
            faults=FaultAxis.from_json_dict(raw["faults"]),
            uniform_fanout=int(raw.get("uniform_fanout", 4)),
        )


def save_scenario(spec: ScenarioSpec, path: str) -> None:
    """Write one spec as JSON (the single-file scenario form)."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spec.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_scenario(path: str) -> ScenarioSpec:
    """Read a spec written by :func:`save_scenario`."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return ScenarioSpec.from_json_dict(json.load(handle))
