"""The scenario × system matrix runner.

:func:`compile_matrix` lowers every requested (scenario, system) cell
through the compiler; :func:`run_matrix` executes the cells — serial
or over a process pool, outcomes returned in cell order either way,
so ``--jobs N`` aggregates byte-identically to the serial run (cells
are frozen values and outcomes plain data, the same property the
fault-campaign pool and the parallel experiment engine rely on).

Failing cells hand their plan to the ddmin shrinker
(:func:`repro.faults.shrink.shrink_plan`) with a runner that re-wraps
each candidate in the cell's membership via
:meth:`~repro.scenarios.compile.CompiledCell.with_plan` — so the
minimized repro keeps the scenario's topology (heavy-tail capacities,
geographic placement) while events and group size shrink.

:func:`render_tables` folds outcomes into one aligned per-scenario
table: delivery, duplicates, bottleneck throughput, forwarding-load
spread, verdict.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.faults.plan import FaultPlan
from repro.faults.shrink import shrink_plan
from repro.scenarios.compile import (
    CellOutcome,
    CompiledCell,
    compile_cell,
    run_cell,
)
from repro.scenarios.spec import ScenarioSpec


def compile_matrix(
    scenarios: Iterable[ScenarioSpec],
    systems: Sequence[str],
    seed: int = 0,
) -> list[CompiledCell]:
    """Lower the full matrix, scenario-major then system order."""
    return [
        compile_cell(spec, system, seed)
        for spec in scenarios
        for system in systems
    ]


def run_matrix(
    cells: Sequence[CompiledCell],
    jobs: int = 1,
    progress: Callable[[CellOutcome], None] | None = None,
) -> list[CellOutcome]:
    """Execute every cell, optionally across ``jobs`` workers."""
    outcomes: list[CellOutcome] = []
    if jobs <= 1 or len(cells) <= 1:
        for cell in cells:
            outcome = run_cell(cell)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for outcome in pool.map(run_cell, cells, chunksize=1):
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    return outcomes


def shrink_cell(
    outcome: CellOutcome,
    log: Callable[[str], None] | None = None,
) -> tuple[CompiledCell, CellOutcome]:
    """Minimize one failing cell with the fault-plan ddmin shrinker.

    Returns the minimized cell and its (still failing) outcome.  The
    shrinker mutates only the plan; every candidate re-runs inside the
    cell's own topology, truncated to the candidate's size.
    """
    cell = outcome.cell

    def runner(plan: FaultPlan):
        return run_cell(cell.with_plan(plan)).outcome

    minimized_plan, _final = shrink_plan(outcome.outcome.plan, runner=runner, log=log)
    minimized = cell.with_plan(minimized_plan)
    return minimized, run_cell(minimized)


def render_tables(outcomes: Sequence[CellOutcome]) -> str:
    """Per-scenario result tables, one row per system."""
    by_scenario: dict[str, list[CellOutcome]] = {}
    for outcome in outcomes:
        by_scenario.setdefault(outcome.cell.scenario, []).append(outcome)
    header = (
        f"{'system':<12} {'delivery':>8} {'dup':>4} {'members':>7} "
        f"{'tput kbps':>9} {'load max/mean':>13} {'verdict':>8}"
    )
    lines: list[str] = []
    for scenario, rows in by_scenario.items():
        lines.append(f"scenario {scenario}")
        lines.append(f"  {header}")
        for outcome in rows:
            delivery = outcome.mean_delivery()
            throughput = outcome.throughput_kbps
            lines.append(
                "  "
                f"{outcome.cell.system:<12} "
                f"{f'{delivery:.4f}' if delivery is not None else 'n/a':>8} "
                f"{sum(outcome.outcome.duplicates_per_message):>4} "
                f"{outcome.outcome.final_membership:>7} "
                f"{f'{throughput:.1f}' if throughput is not None else 'n/a':>9} "
                f"{outcome.load_max_over_mean:>13.2f} "
                f"{'ok' if outcome.passed else 'FAIL':>8}"
            )
        for outcome in rows:
            for violation in outcome.outcome.violations:
                lines.append(f"  ! {outcome.cell.system}: {violation}")
    total = len(outcomes)
    failing = sum(1 for outcome in outcomes if not outcome.passed)
    lines.append(f"{total} cells, {failing} failing")
    return "\n".join(lines)
