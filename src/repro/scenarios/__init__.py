"""repro.scenarios: a declarative scenario compiler for the matrix.

One frozen :class:`ScenarioSpec` composes three independent axes —
topology (who the members are and where they sit), workload (what the
group does, including churn *during* dissemination), and faults (what
goes wrong) — and the compiler lowers ``(spec, system, seed)`` into
the existing fault-campaign machinery as a :class:`CompiledCell`:
a :class:`~repro.faults.plan.FaultPlan` plus an explicit
:class:`~repro.systems.MemberSpec` and latency model.

Specs and cells are JSON round-trippable values; compilation draws
all randomness from named SHA-512 streams, so the same inputs always
lower byte-identically and matrix runs parallelize without changing a
byte of output.  See ``docs/SCENARIOS.md`` for the cookbook and
``python -m repro.scenarios`` for the CLI.
"""

from repro.scenarios.compile import (
    CellOutcome,
    CompiledCell,
    compile_cell,
    load_cell,
    run_cell,
    save_cell,
)
from repro.scenarios.library import LIBRARY, get_scenario, scenario_names
from repro.scenarios.runner import (
    compile_matrix,
    render_tables,
    run_matrix,
    shrink_cell,
)
from repro.scenarios.spec import (
    ChurnModel,
    FaultAxis,
    LatencySpec,
    ScenarioSpec,
    TopologyAxis,
    WorkloadAxis,
    load_scenario,
    save_scenario,
)

__all__ = [
    "CellOutcome",
    "CompiledCell",
    "ChurnModel",
    "FaultAxis",
    "LatencySpec",
    "LIBRARY",
    "ScenarioSpec",
    "TopologyAxis",
    "WorkloadAxis",
    "compile_cell",
    "compile_matrix",
    "get_scenario",
    "load_cell",
    "load_scenario",
    "render_tables",
    "run_cell",
    "run_matrix",
    "save_cell",
    "save_scenario",
    "scenario_names",
    "shrink_cell",
]
