"""The library of named scenarios.

Five canonical workload × fault × topology compositions, each a plain
:class:`~repro.scenarios.spec.ScenarioSpec` value (dump one with
``python -m repro.scenarios show <name>``; every one is expressible
as a single JSON file and replayable from it):

* ``flash-crowd`` — a join surge during dissemination: Poisson joins
  arriving far faster than departures, the Section 5.1 "highly dynamic
  membership" case aimed at the join protocol.
* ``diurnal-churn`` — sinusoidal day/night churn (Lewis-Shedler
  thinned), half the departures graceful, aimed at the maintenance
  protocol's repair latency across swings.
* ``regional-partition`` — Hilbert geographic layout with
  distance-proportional latency, then correlated partitions between
  rank bands; geographic clustering makes ranks correlate with
  regions, so the cuts model a regional network failure.
* ``heavy-tail-capacities`` — bounded-Pareto capacities (most members
  near the floor, a few whales) under background churn and a loss
  burst; stresses the capacity-aware fanout logic where the capacity
  distribution is nothing like the paper's uniform default.
* ``multi-source-storm`` — many sources multicasting through a
  maintenance-RPC timeout storm; stresses implicit per-source trees
  (the Section 5.1 flooding argument) rather than one shared tree.

Sizes and windows are deliberately small (12–16 members, ≤ 22
simulated seconds): a full 5-scenario × 4-system matrix is a CI-sized
workload, and the fault campaign already covers scale elsewhere.
"""

from __future__ import annotations

from repro.capacity.distributions import HeavyTailCapacity, UniformCapacity
from repro.faults.plan import MAINTENANCE_KINDS, FaultEvent
from repro.scenarios.spec import (
    ChurnModel,
    FaultAxis,
    LatencySpec,
    ScenarioSpec,
    TopologyAxis,
    WorkloadAxis,
)


def _flash_crowd() -> ScenarioSpec:
    return ScenarioSpec(
        name="flash-crowd",
        description="join surge during dissemination (joins >> departures)",
        topology=TopologyAxis(size=12),
        workload=WorkloadAxis(
            multicasts=2,
            propagation_window=10.0,
            # 3:1 joins over departures.  Rates beyond ~0.4 joins/s on a
            # 12-member group drive the CAM rings past what 400 repair
            # rounds recover from (the uniform baselines survive) —
            # worth a dedicated study, but the library pins rates where
            # a healthy protocol must pass.
            churn=ChurnModel(kind="poisson", join_rate=0.3, depart_rate=0.1),
        ),
        faults=FaultAxis(fault_window=15.0),
    )


def _diurnal_churn() -> ScenarioSpec:
    return ScenarioSpec(
        name="diurnal-churn",
        description="sinusoidal day/night churn, half the departures graceful",
        topology=TopologyAxis(size=16),
        workload=WorkloadAxis(
            multicasts=2,
            propagation_window=10.0,
            churn=ChurnModel(
                kind="diurnal",
                trough_rate=0.02,
                peak_rate=0.4,
                period=20.0,
                crash_fraction=0.5,
            ),
        ),
        faults=FaultAxis(fault_window=20.0),
    )


def _regional_partition() -> ScenarioSpec:
    # Hilbert placement clusters nearby hosts into contiguous identifier
    # arcs, and live-peer ranks sort by identifier — so cutting rank
    # band {0..3} off from band {8..11} severs one geographic region
    # from another, the correlated-failure shape single random cuts
    # never produce.
    events = [
        FaultEvent(2.0, "partition", a=0, b=8),
        FaultEvent(2.0, "partition", a=1, b=9),
        FaultEvent(2.0, "partition", a=2, b=10),
        FaultEvent(9.0, "heal"),
        FaultEvent(12.0, "partition", a=4, b=12),
        FaultEvent(12.0, "partition", a=5, b=13),
        FaultEvent(18.0, "heal"),
    ]
    return ScenarioSpec(
        name="regional-partition",
        description="correlated partitions between geographic regions",
        topology=TopologyAxis(
            size=16,
            placement="hilbert",
            latency=LatencySpec(kind="geographic", base=0.01, per_unit=0.1),
        ),
        workload=WorkloadAxis(multicasts=2, propagation_window=10.0),
        faults=FaultAxis(fault_window=20.0, events=tuple(events)),
    )


def _heavy_tail_capacities() -> ScenarioSpec:
    events = [
        FaultEvent(3.0, "loss", rate=0.15),
        FaultEvent(10.0, "loss", rate=0.0),
    ]
    return ScenarioSpec(
        name="heavy-tail-capacities",
        description="bounded-Pareto capacities under churn and a loss burst",
        topology=TopologyAxis(
            size=16,
            capacities=HeavyTailCapacity(low=2, high=32, alpha=1.6),
        ),
        workload=WorkloadAxis(
            multicasts=2,
            propagation_window=10.0,
            churn=ChurnModel(kind="poisson", join_rate=0.15, depart_rate=0.15),
        ),
        faults=FaultAxis(fault_window=18.0, events=tuple(events)),
    )


def _multi_source_storm() -> ScenarioSpec:
    events = [
        FaultEvent(2.0, "kind_loss", kind=kind, rate=0.3)
        for kind in MAINTENANCE_KINDS
    ] + [
        FaultEvent(8.0, "kind_loss", kind=kind, rate=0.0)
        for kind in MAINTENANCE_KINDS
    ]
    return ScenarioSpec(
        name="multi-source-storm",
        description="many sources multicast through a maintenance timeout storm",
        topology=TopologyAxis(size=14, capacities=UniformCapacity(4, 10)),
        workload=WorkloadAxis(
            multicasts=5,
            propagation_window=8.0,
            static_sources=5,
        ),
        faults=FaultAxis(fault_window=15.0, events=tuple(events)),
    )


#: The library, in presentation order (builders run once at import).
LIBRARY: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        _flash_crowd(),
        _diurnal_churn(),
        _regional_partition(),
        _heavy_tail_capacities(),
        _multi_source_storm(),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Library scenario names, in presentation order."""
    return tuple(LIBRARY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look one library scenario up by name."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(LIBRARY)}"
        ) from None
